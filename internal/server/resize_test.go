package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wats/internal/amc"
	"wats/internal/runtime"
)

// newAsymEnv is newEnv over a 2-c-group asymmetric runtime, so the bare
// worker-count form of /v1/resize has a real apportionment to do.
func newAsymEnv(t *testing.T) *testEnv {
	t.Helper()
	rt, err := runtime.New(runtime.Config{
		Arch: amc.MustNew("asym",
			amc.CGroup{Freq: 2, N: 1}, amc.CGroup{Freq: 1, N: 1}),
		Policy:                "WATS",
		DisableSpeedEmulation: true,
		LockFree:              true,
		Seed:                  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Runtime: rt, Workloads: testWorkloads()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Shutdown()
	})
	return &testEnv{rt: rt, srv: srv, ts: ts}
}

func postResize(t *testing.T, env *testEnv, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(env.ts.URL+"/v1/resize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("body of %q: %v", body, err)
	}
	return resp.StatusCode, v
}

func shapeOf(v map[string]any) []int {
	raw, _ := v["shape"].([]any)
	out := make([]int, len(raw))
	for i, x := range raw {
		out[i] = int(x.(float64))
	}
	return out
}

func TestResizeEndpoint(t *testing.T) {
	env := newAsymEnv(t)

	// Bare total: apportioned over the base machine's 1:1 group ratio.
	code, v := postResize(t, env, `{"workers":8}`)
	if code != http.StatusOK {
		t.Fatalf("workers=8: status %d (%v)", code, v)
	}
	if s := shapeOf(v); v["workers"].(float64) != 8 || s[0] != 4 || s[1] != 4 {
		t.Fatalf("workers=8 gave workers=%v shape=%v, want 8 as [4 4]", v["workers"], s)
	}
	if _, ok := v["resize_ms"]; !ok {
		t.Fatal("response missing resize_ms")
	}
	if got := env.rt.Workers(); got != 8 {
		t.Fatalf("runtime has %d workers after resize, want 8", got)
	}

	// Explicit shape: passed through as-is, including a shrink.
	code, v = postResize(t, env, `{"shape":[2,1]}`)
	if code != http.StatusOK {
		t.Fatalf("shape=[2,1]: status %d (%v)", code, v)
	}
	if s := shapeOf(v); s[0] != 2 || s[1] != 1 {
		t.Fatalf("shape=[2,1] applied as %v", s)
	}
	if got := env.rt.RetiredWorkers(); got != 5 {
		t.Fatalf("shrink retired %d workers, want 5", got)
	}

	// Jobs still complete on the resized pool.
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"sleep","params":{"n":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job after resize: status %d", resp.StatusCode)
	}
}

func TestResizeEndpointRejectsBadRequests(t *testing.T) {
	env := newAsymEnv(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"both workers and shape", `{"workers":4,"shape":[2,2]}`},
		{"neither", `{}`},
		{"zero workers", `{"workers":0}`},
		{"empty group", `{"shape":[4,0]}`},
		{"wrong group count", `{"shape":[4]}`},
		{"garbage body", `{"workers":`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, v := postResize(t, env, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("body %q: status %d (%v), want 400", tc.body, code, v)
			}
		})
	}
	resp, err := http.Get(env.ts.URL + "/v1/resize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/resize: status %d, want 405", resp.StatusCode)
	}
	// Nothing above may have moved the pool.
	if got := env.rt.Workers(); got != 2 {
		t.Fatalf("rejected requests changed the pool to %d workers", got)
	}
}
