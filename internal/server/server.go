// Package server is the network-facing job service over the live runtime:
// named kernel workloads become invocable job types submitted over
// HTTP/JSON, with per-job deadlines carried via context.Context into the
// runtime's cancellation points, admission control that sheds load before
// queues collapse, and graceful drain for zero-drop shutdowns. It is the
// serving layer the ROADMAP's "heavy traffic" north star needs: the WATS
// history/partition machinery learns each endpoint's cost profile through
// the task classes the workloads are bound to.
//
// Lifecycle of one job:
//
//	POST /v1/jobs ── admission (draining? 503; inflight/queue full? 429)
//	   └─ SpawnContext(jobCtx) ── queued in the class's cluster pool
//	        └─ root task runs the workload (may fan out child tasks)
//	              └─ job finalized: completed | failed | expired
//
// A job whose deadline fires while queued is dropped at the runtime's
// next cancellation point (visible as WorkerStats.Cancelled and the
// wats_cancels_total metric) and reported as 504; children of an expired
// job are abandoned at their queue boundaries. Admission rejections are
// 429 with Retry-After, so a well-behaved open-loop client backs off
// instead of collapsing p99 (see cmd/watsload).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wats/internal/obs"
	"wats/internal/runtime"
	"wats/internal/scale"
	"wats/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Runtime executes the jobs. Required.
	Runtime *runtime.Runtime
	// Workloads is the job-type registry (nil = Builtins()).
	Workloads map[string]Workload
	// MaxInflight bounds concurrently admitted jobs; submissions beyond
	// it are shed with 429 (0 = 64).
	MaxInflight int
	// ShedQueueDepth sheds submissions while the runtime's queued-task
	// count is at or above it (0 = the runtime's MaxQueuedTasks, so one
	// knob bounds both queue memory and admitted work).
	ShedQueueDepth int
	// DefaultDeadline applies to jobs that set no deadline_ms (0 = none).
	DefaultDeadline time.Duration
	// RetryAfter is the backoff hint on 429 responses (0 = 1s).
	RetryAfter time.Duration
	// Metrics receives per-job latency histograms and outcome counters
	// (nil = a fresh collector; reachable via Server.Metrics).
	Metrics *obs.JobMetrics
}

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
	StatusExpired   = "expired"
	// StatusPanicked marks a job poisoned by a task panic: the runtime's
	// isolation layer recovered the panic, the job's context was
	// cancelled (retiring queued siblings), and the job reports a
	// structured 500 instead of taking the daemon down.
	StatusPanicked = "panicked"
)

// JobView is the wire representation of one job.
type JobView struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Status   string `json:"status"`
	// QueueWaitMS is the time from admission to the root task starting
	// (for expired-while-queued jobs: to the deadline firing).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// ExecMS is the root task's wall-clock execution time.
	ExecMS float64 `json:"exec_ms,omitempty"`
	// EnergyJ is a modeled per-job energy estimate: the root task's
	// execution time priced at a fastest-group core's power draw (the
	// DVFS model of counters.EnergyModel). An upper bound — a job run on
	// a slower group burned less.
	EnergyJ float64 `json:"energy_j,omitempty"`
	Result  any     `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
	// Detail carries the panic message (class, worker, value) for
	// panicked jobs: the body reads {"error":"panic","detail":...}.
	Detail string `json:"detail,omitempty"`
}

// Server is the HTTP job service. Create with New, mount Handler, and on
// shutdown call Drain before Runtime.Shutdown.
//
// Job records are pooled (see job.go): synchronous jobs — unary, batch,
// and streaming — run on recycled jobRecs and never enter the jobs map;
// only async (submit-and-poll) jobs are registered there, since their
// records must outlive the submitting request.
type Server struct {
	cfg      Config
	rt       *runtime.Runtime
	metrics  *obs.JobMetrics
	inflight atomic.Int64
	draining atomic.Bool
	idSeq    atomic.Uint64

	recPool sync.Pool // pooled *jobRec for sync/batch/stream jobs
	wheel   *dlWheel  // per-job deadlines (one goroutine, no per-job timer)

	mu       sync.Mutex
	jobs     map[string]*jobRec // async jobs only
	finished []string           // finalized job ids, oldest first (eviction order)

	// capMu guards the single decision-ledger capture (see capture.go).
	capMu   sync.Mutex
	capture *trace.Capture
}

// keepFinished bounds the finalized-job table; the oldest records are
// evicted beyond it so an async-heavy client cannot grow memory without
// bound. In-flight jobs are never evicted.
const keepFinished = 4096

// New builds a Server over cfg.Runtime.
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("server: Config.Runtime is required")
	}
	if cfg.Workloads == nil {
		cfg.Workloads = Builtins()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.ShedQueueDepth <= 0 {
		cfg.ShedQueueDepth = cfg.Runtime.MaxQueuedTasks()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.JobMetrics{}
	}
	s := &Server{
		cfg:     cfg,
		rt:      cfg.Runtime,
		metrics: cfg.Metrics,
		jobs:    map[string]*jobRec{},
		wheel:   newWheel(),
	}
	s.recPool.New = func() any { return s.newRecRaw() }
	return s, nil
}

// Metrics returns the server's job-metrics collector (for mounting on a
// debug mux).
func (s *Server) Metrics() *obs.JobMetrics { return s.metrics }

// Inflight returns the number of currently admitted, unfinalized jobs.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Draining reports whether admission has been closed by Drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service mux: the /v1 job API plus the full debug
// mux (/metrics with job histograms, /debug/wats, /debug/pprof/, ...).
func (s *Server) Handler() *http.ServeMux {
	dbg := NewDebugMux(func() *runtime.Runtime { return s.rt }, func() *obs.JobMetrics { return s.metrics })
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs:batch", s.handleJobsBatch)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/resize", s.handleResize)
	mux.HandleFunc("/v1/trace/start", s.handleTraceStart)
	mux.HandleFunc("/v1/trace/stop", s.handleTraceStop)
	mux.Handle("/metrics", dbg)
	mux.Handle("/debug/", dbg)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `watsd job service
  POST /v1/jobs      submit a job {"workload":..,"params":{..},"deadline_ms":..,"async":bool}
  POST /v1/jobs:batch submit N jobs in one request {"jobs":[{..},..]} (per-item codes)
  GET  /v1/stream    upgrade to the length-prefixed binary job stream (wats-stream/1)
  GET  /v1/jobs/{id} poll an async job
  GET  /v1/workloads list invocable workloads
  GET  /v1/version   build info
  GET  /v1/healthz   liveness + admission state
  GET  /v1/readyz    readiness (503 while draining or wedged)
  GET  /v1/stats     machine-readable load stats (per-class latency EWMAs, queue depth, inflight)
  POST /v1/resize    resize the worker pool {"workers":N} or {"shape":[n1,..,nK]}
  POST /v1/trace/start  start a decision-ledger capture {"path":..} (replay with watstwin)
  POST /v1/trace/stop   stop the capture and seal the file
  GET  /metrics      Prometheus metrics (scheduler + per-job histograms)
  GET  /debug/wats   scheduler snapshot; /debug/pprof/, /debug/vars, /debug/wats/trace
`)
	})
	return mux
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Workload string `json:"workload"`
	Params   Params `json:"params"`
	// DeadlineMS is the job deadline in milliseconds from admission; the
	// job is cancelled at the runtime's next cancellation point once it
	// fires and reported 504 (sync) / "expired" (async).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Async switches to submit-and-poll: respond 202 immediately and
	// expose the job at GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	wl, ok := s.cfg.Workloads[req.Workload]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown workload %q (see /v1/workloads)", req.Workload)
		return
	}
	if err := req.Params.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad params: %v", err)
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	// Admission: a bounded in-flight count plus queue-depth load shedding
	// on the runtime's own depth counters. Shedding here returns a cheap
	// 429 instead of letting queues balloon and every admitted job's p99
	// collapse.
	if s.reserve(1) == 0 {
		if q := s.rt.QueuedTasks(); q >= s.cfg.ShedQueueDepth {
			s.shed(w, "runtime queue depth %d at shed threshold %d", q, s.cfg.ShedQueueDepth)
		} else {
			s.shed(w, "at max in-flight jobs (%d)", s.cfg.MaxInflight)
		}
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	s.metrics.Submitted()

	if req.Async {
		s.submitAsync(w, &wl, req.Params, deadline)
		return
	}
	rec, code := s.submitSync(r.Context(), &wl, req.Params, deadline)
	if rec == nil {
		httpError(w, http.StatusServiceUnavailable, "runtime shut down")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(rec.buf)
	rec.unref()
}

// submitAsync registers an unpooled record in the jobs map (it must
// outlive this request for GET /v1/jobs/{id}) and responds 202. The
// deadline wheel plus the runtime's abort hook replace the old per-job
// watcher goroutine.
func (s *Server) submitAsync(w http.ResponseWriter, wl *Workload, p Params, deadline time.Duration) {
	r := s.newRecRaw()
	r.idn = s.idSeq.Add(1)
	r.idStr = fmt.Sprintf("j%06d", r.idn)
	s.mu.Lock()
	s.jobs[r.idStr] = r
	s.mu.Unlock()
	if err := s.startJob(r, wl, p, deadline, modeAsync); err != nil {
		httpError(w, http.StatusServiceUnavailable, "runtime shut down")
		return
	}
	writeJSONStatus(w, http.StatusAccepted, r.view())
}

// httpStatusFor maps a final job status to the synchronous response
// code: jobs that ran fine are 200, panicked or failed jobs are a
// structured 500, expired jobs 504.
func httpStatusFor(status string) int {
	switch status {
	case StatusPanicked, StatusFailed:
		return http.StatusInternalServerError
	case StatusExpired:
		return http.StatusGatewayTimeout
	default:
		return http.StatusOK
	}
}

// evictLocked appends id to the finished list and drops the oldest
// finalized jobs beyond keepFinished. Caller holds s.mu. Only async
// jobs are registered (pooled sync records never enter the map), so
// only they pass through here.
func (s *Server) evictLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > keepFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, j.view())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.cfg.Workloads))
	for n := range s.cfg.Workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		out = append(out, s.cfg.Workloads[n])
	}
	writeJSON(w, out)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Build())
}

// handleHealthz is liveness: always 200 with the admission state in the
// body — a draining instance is still alive and answering pollers.
// Readiness (should the load balancer route here?) is /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.draining.Load() {
		state = "draining"
	}
	writeJSON(w, map[string]any{
		"status":          state,
		"inflight":        s.Inflight(),
		"queued":          s.rt.QueuedTasks(),
		"max_queued":      s.rt.MaxQueuedTasks(),
		"stalled_workers": len(s.rt.StalledWorkers()),
		"workers":         s.rt.Workers(),
		"shape":           s.rt.Shape(),
		"energy_joules":   s.rt.EnergyJoules(),
		"capture":         s.CaptureStatus(),
	})
}

// handleStats is the machine-readable load summary a cluster front end
// (internal/gate) polls to score this node: run-queue depth and
// in-flight pressure against their bounds, the worker-pool shape, and
// the per-class queue-wait/exec latency EWMAs. /v1/healthz stays the
// human-oriented liveness view; this endpoint is the routing signal,
// so it is one flat JSON object with stable keys and no histograms.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, map[string]any{
		"workers":      s.rt.Workers(),
		"shape":        s.rt.Shape(),
		"queued":       s.rt.QueuedTasks(),
		"max_queued":   s.rt.MaxQueuedTasks(),
		"inflight":     s.Inflight(),
		"max_inflight": s.cfg.MaxInflight,
		"draining":     s.draining.Load(),
		"classes":      s.metrics.ClassEWMAs(),
	})
}

// resizeRequest is the POST /v1/resize body: either a total worker
// count (split across c-groups proportionally to the bound machine's
// asymmetry, energy-ranked ties) or an explicit per-group shape.
type resizeRequest struct {
	Workers int   `json:"workers,omitempty"`
	Shape   []int `json:"shape,omitempty"`
}

// handleResize applies an online pool resize and reports the resulting
// shape. Explicit shapes are passed through (amc validates the group
// count and per-group minimums); a bare worker count is apportioned via
// scale.ShapeFor so operators can think in totals.
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req resizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	counts := req.Shape
	switch {
	case len(counts) > 0 && req.Workers > 0:
		httpError(w, http.StatusBadRequest, "give either workers or shape, not both")
		return
	case len(counts) == 0 && req.Workers <= 0:
		httpError(w, http.StatusBadRequest, "need workers >= 1 or a non-empty shape")
		return
	case len(counts) == 0:
		base := s.rt.BaseArch()
		freqs := make([]float64, base.K())
		for i, g := range base.Groups {
			freqs[i] = g.Freq
		}
		counts = scale.ShapeFor(req.Workers, base.Counts(), freqs, s.rt.EnergyModel())
	}
	start := time.Now()
	if err := s.rt.Resize(counts); err != nil {
		httpError(w, http.StatusBadRequest, "resize: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"workers":   s.rt.Workers(),
		"shape":     s.rt.Shape(),
		"resize_ms": ms(time.Since(start)),
	})
}

// handleReadyz is readiness: 503 while draining (rotate the instance
// out before the SIGTERM drain finishes) or while any worker is wedged
// on a stalled task (the watchdog can detect but not preempt it — see
// internal/runtime/watchdog.go — so unreadiness is the containment).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	stalled := s.rt.StalledWorkers()
	state, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		state, code = "draining", http.StatusServiceUnavailable
	case len(stalled) > 0:
		state, code = "wedged", http.StatusServiceUnavailable
	}
	writeJSONStatus(w, code, map[string]any{
		"status":          state,
		"stalled_workers": len(stalled),
	})
}

// Drain closes admission (new submissions get 503), waits for every
// admitted job to finalize, then drains the runtime's remaining tasks
// (stragglers of expired jobs included) so a following Runtime.Shutdown
// drops nothing. It returns ctx.Err() if the context fires first; drain
// state persists either way.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	// Every job is finalized; let the runtime quiesce (cancelled-but-
	// queued tasks drain instantly when a worker acquires them).
	done := make(chan struct{})
	go func() { s.rt.Wait(); close(done) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// shed rejects a submission with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, format string, args ...any) {
	s.metrics.Shed()
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	httpError(w, http.StatusTooManyRequests, format, args...)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
