package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wats/internal/amc"
	"wats/internal/runtime"
)

// testEnv is one server over a small symmetric runtime (no speed
// emulation: tests want wall-clock determinism, not asymmetry).
type testEnv struct {
	rt  *runtime.Runtime
	srv *Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	rt, err := runtime.New(runtime.Config{
		Arch:                  amc.MustNew("test", amc.CGroup{Freq: 2.0, N: 4}),
		DisableSpeedEmulation: true,
		LockFree:              true,
		Seed:                  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Runtime: rt, Workloads: testWorkloads()}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Shutdown()
	})
	return &testEnv{rt: rt, srv: srv, ts: ts}
}

// testWorkloads are the builtins plus controlled synthetic workloads the
// tests need for precise timing: a sleeper, a channel blocker, and a
// fan-out tree of slow leaves.
func testWorkloads() map[string]Workload {
	ws := Builtins()
	ws["sleep"] = Workload{
		Name: "sleep", Class: "sleep", Desc: "sleep params.n ms, checking cancellation each ms",
		Run: func(ctx *runtime.Ctx, p Params) (any, error) {
			for i := 0; i < p.N; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				time.Sleep(time.Millisecond)
			}
			return map[string]any{"slept_ms": p.N}, nil
		},
	}
	ws["fanout"] = Workload{
		Name: "fanout", Class: "fanout", Desc: "spawn params.n children sleeping params.size ms each",
		Run: func(ctx *runtime.Ctx, p Params) (any, error) {
			g := ctx.Group()
			for i := 0; i < p.N; i++ {
				g.Spawn(ctx, "fanout.leaf", func(*runtime.Ctx) {
					time.Sleep(time.Duration(p.Size) * time.Millisecond)
				})
			}
			g.Wait(ctx)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return map[string]any{"children": p.N}, nil
		},
	}
	return ws
}

// blockerWorkload returns a workload that parks until release is closed,
// for tests that need jobs pinned in-flight.
func blockerWorkload(release chan struct{}) Workload {
	return Workload{
		Name: "block", Class: "block", Desc: "block until released",
		Run: func(ctx *runtime.Ctx, p Params) (any, error) {
			<-release
			return "released", nil
		},
	}
}

func (e *testEnv) submit(t *testing.T, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, v
}

func (e *testEnv) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestSubmitSync(t *testing.T) {
	e := newEnv(t, nil)
	resp, v := e.submit(t, `{"workload":"sha1","params":{"size":4096,"seed":3}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if v.Status != StatusCompleted {
		t.Fatalf("job status %q, want completed (err %q)", v.Status, v.Error)
	}
	if v.Result == nil {
		t.Error("completed job has no result")
	}
	if v.ExecMS <= 0 {
		t.Errorf("exec_ms = %v, want > 0", v.ExecMS)
	}
	// The per-job histograms must land on /metrics, labeled by class.
	_, body := e.get(t, "/metrics")
	for _, want := range []string{
		`wats_jobs_total{status="completed"} 1`,
		`wats_job_exec_nanos_count{class="sha1"} 1`,
		`wats_job_queue_wait_nanos_count{class="sha1"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSubmitAsyncAndPoll(t *testing.T) {
	e := newEnv(t, nil)
	resp, v := e.submit(t, `{"workload":"sleep","params":{"n":20},"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if v.ID == "" {
		t.Fatal("202 response has no job id")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gresp, body := e.get(t, "/v1/jobs/"+v.ID)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", gresp.StatusCode)
		}
		var pv JobView
		if err := json.Unmarshal(body, &pv); err != nil {
			t.Fatal(err)
		}
		if pv.Status == StatusCompleted {
			if pv.ExecMS < 15 {
				t.Errorf("exec_ms = %v, want >= 15 (20ms sleep)", pv.ExecMS)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %q", pv.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, _ := e.get(t, "/v1/jobs/nosuchjob"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	e := newEnv(t, nil)
	if resp, _ := e.submit(t, `{"workload":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: %d, want 400", resp.StatusCode)
	}
	if resp, _ := e.submit(t, `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(e.ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: %d, want 405", resp.StatusCode)
	}
}

// A 1ms deadline on a job that fans out slow children must return 504,
// and the runtime must observe the dropped children as cancellations —
// the deadline reaches the scheduler, not just the HTTP layer.
func TestDeadlineExceeded504(t *testing.T) {
	e := newEnv(t, nil)
	resp, v := e.submit(t, `{"workload":"fanout","params":{"n":64,"size":5},"deadline_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (job %+v)", resp.StatusCode, v)
	}
	if v.Status != StatusExpired {
		t.Errorf("job status %q, want expired", v.Status)
	}
	// Wait for the abandoned tree to drain, then the drops must be
	// visible in runtime stats and on /metrics.
	e.rt.Wait()
	if got := e.rt.Cancelled(); got == 0 {
		t.Error("runtime saw no cancelled tasks; deadline never reached the scheduler")
	}
	_, body := e.get(t, "/metrics")
	if !strings.Contains(string(body), `wats_jobs_total{status="expired"} 1`) {
		t.Error("/metrics missing expired job count")
	}
	if strings.Contains(string(body), "wats_cancels_total 0\n") {
		t.Error("/metrics reports zero task cancels")
	}
}

// Submissions beyond MaxInflight are shed with 429 + Retry-After while
// admitted jobs keep running.
func TestOverloadShedsWith429(t *testing.T) {
	release := make(chan struct{})
	e := newEnv(t, func(c *Config) {
		c.MaxInflight = 2
		c.Workloads["block"] = blockerWorkload(release)
	})
	for i := 0; i < 2; i++ {
		if resp, _ := e.submit(t, `{"workload":"block","async":true}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("blocker %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := e.submit(t, `{"workload":"sha1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	waitInflightZero(t, e.srv)
	if resp, v := e.submit(t, `{"workload":"sha1"}`); resp.StatusCode != http.StatusOK || v.Status != StatusCompleted {
		t.Errorf("post-release submit: status %d job %q", resp.StatusCode, v.Status)
	}
	_, body := e.get(t, "/metrics")
	if !strings.Contains(string(body), `wats_jobs_total{status="shed"} 1`) {
		t.Error("/metrics missing shed count")
	}
}

// Queue-depth shedding: once the runtime's queued-task count reaches the
// threshold, submissions are shed even below MaxInflight.
func TestQueueDepthShedding(t *testing.T) {
	release := make(chan struct{})
	e := newEnv(t, func(c *Config) {
		c.MaxInflight = 100
		c.ShedQueueDepth = 1
		c.Workloads["block"] = blockerWorkload(release)
	})
	defer close(release)
	// Fill all 4 workers, then one more whose root task stays queued.
	for i := 0; i < 5; i++ {
		if resp, _ := e.submit(t, `{"workload":"block","async":true}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("blocker %d: status %d", i, resp.StatusCode)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return e.rt.QueuedTasks() >= 1 })
	resp, _ := e.submit(t, `{"workload":"sha1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 at queue depth %d", resp.StatusCode, e.rt.QueuedTasks())
	}
}

// Drain must finish every admitted job (zero drops), reject new work with
// 503, and leave the runtime quiescent.
func TestGracefulDrain(t *testing.T) {
	e := newEnv(t, nil)
	var ids []string
	for i := 0; i < 8; i++ {
		resp, v := e.submit(t, `{"workload":"sleep","params":{"n":15},"async":true}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		_, body := e.get(t, "/v1/jobs/"+id)
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusCompleted {
			t.Errorf("job %s: status %q after drain, want completed", id, v.Status)
		}
	}
	if resp, _ := e.submit(t, `{"workload":"sha1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: status %d, want 503", resp.StatusCode)
	}
	if resp, body := e.get(t, "/v1/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Errorf("healthz after drain: %d %s", resp.StatusCode, body)
	}
	if q := e.rt.QueuedTasks(); q != 0 {
		t.Errorf("%d tasks still queued after drain", q)
	}
}

// The e2e shape of the acceptance criterion: under deliberate overload
// (tiny in-flight bound, many concurrent submitters) shed responses rise
// while the latency of every completed job stays bounded by the
// (inflight cap × job time) envelope instead of collapsing.
func TestOverloadKeepsCompletedLatencyBounded(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MaxInflight = 4 })
	const n = 120
	var mu sync.Mutex
	var completed, shed int
	var worst time.Duration
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := http.Post(e.ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(`{"workload":"sleep","params":{"n":5}}`))
			if err != nil {
				return
			}
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				completed++
				if d := time.Since(t0); d > worst {
					worst = d
				}
			case http.StatusTooManyRequests:
				shed++
			}
		}()
	}
	wg.Wait()
	if completed == 0 {
		t.Fatal("nothing completed under overload")
	}
	if shed == 0 {
		t.Fatal("nothing shed under overload: admission control inert")
	}
	// 4 in-flight × ~5ms jobs: a completed job can never queue behind
	// more than the in-flight cap, so even a generous bound is far below
	// the n × 5ms a collapsing unshed queue would produce.
	if worst > 5*time.Second {
		t.Errorf("worst completed latency %v: shedding did not bound it", worst)
	}
	t.Logf("overload: %d completed, %d shed, worst completed latency %v", completed, shed, worst)
}

func TestVersionWorkloadsHealthz(t *testing.T) {
	e := newEnv(t, nil)
	resp, body := e.get(t, "/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/version: %d", resp.StatusCode)
	}
	var b BuildInfo
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if b.Version == "" || b.GoVersion == "" {
		t.Errorf("incomplete build info: %+v", b)
	}
	resp, body = e.get(t, "/v1/workloads")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"sha1"`) {
		t.Errorf("/v1/workloads: %d %.80s", resp.StatusCode, body)
	}
	resp, body = e.get(t, "/v1/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("/v1/healthz: %d %s", resp.StatusCode, body)
	}
	// The debug mux rides on the same listener.
	if resp, _ := e.get(t, "/debug/wats"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/wats: %d", resp.StatusCode)
	}
}

// Every builtin workload must run to completion through the service.
func TestBuiltinWorkloadsComplete(t *testing.T) {
	e := newEnv(t, nil)
	for name := range Builtins() {
		resp, v := e.submit(t, fmt.Sprintf(`{"workload":%q,"params":{"size":2048,"n":4,"generations":2}}`, name))
		if resp.StatusCode != http.StatusOK || v.Status != StatusCompleted {
			t.Errorf("%s: status %d job %q err %q", name, resp.StatusCode, v.Status, v.Error)
		}
	}
}

func waitInflightZero(t *testing.T, s *Server) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool { return s.Inflight() == 0 })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSyncCallerGoneAbandonsJob: a sync submitter that stops waiting —
// a disconnected client, or a hedged gate attempt losing the race —
// abandons the job. It must be accounted expired, never completed, so
// gate-side hedging cannot inflate the completed count.
func TestSyncCallerGoneAbandonsJob(t *testing.T) {
	e := newEnv(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.ts.URL+"/v1/jobs",
		strings.NewReader(`{"workload":"sleep","params":{"n":2000}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			resp.Body.Close()
		}
		done <- derr
	}()
	time.Sleep(50 * time.Millisecond) // let the body start sleeping
	cancel()
	if derr := <-done; derr == nil {
		t.Fatal("cancelled request unexpectedly returned a response")
	}
	// abandon wins finalization immediately; the poisoned body retires at
	// its next cancellation check and the counters settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c := e.srv.Metrics().Counters()
		if c.Expired == 1 && c.Completed == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters after abandon: %+v", c)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
