package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"wats/internal/obs"
)

// statsView mirrors the /v1/stats wire shape the gate's poller decodes.
type statsView struct {
	Workers     int                      `json:"workers"`
	Shape       []int                    `json:"shape"`
	Queued      int                      `json:"queued"`
	MaxQueued   int                      `json:"max_queued"`
	Inflight    int                      `json:"inflight"`
	MaxInflight int                      `json:"max_inflight"`
	Draining    bool                     `json:"draining"`
	Classes     map[string]obs.ClassEWMA `json:"classes"`
}

// TestStatsEndpoint runs a few jobs and checks /v1/stats exposes the
// admission bounds, the pool shape, and a per-class EWMA row whose exec
// estimate reflects the workload's actual service time.
func TestStatsEndpoint(t *testing.T) {
	env := newEnv(t, nil)

	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(map[string]any{"workload": "sleep", "params": map[string]any{"n": 5}})
		resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: HTTP %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(env.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: HTTP %d", resp.StatusCode)
	}
	var st statsView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || len(st.Shape) == 0 {
		t.Fatalf("pool shape missing: %+v", st)
	}
	if st.MaxInflight != 64 || st.MaxQueued <= 0 {
		t.Fatalf("admission bounds missing: %+v", st)
	}
	if st.Draining {
		t.Fatalf("fresh server reports draining: %+v", st)
	}
	cls, ok := st.Classes["sleep"]
	if !ok {
		t.Fatalf("no sleep class row: %+v", st.Classes)
	}
	if cls.Completed != 3 {
		t.Fatalf("sleep completed = %d, want 3", cls.Completed)
	}
	if cls.ExecMS < 4 || cls.ExecMS > 500 {
		t.Fatalf("sleep exec EWMA %.2fms implausible for a 5ms job", cls.ExecMS)
	}

	// POST must be rejected: the endpoint is a read-only poll target.
	post, err := http.Post(env.ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: HTTP %d, want 405", post.StatusCode)
	}
}
