// GET /v1/stream — the persistent streaming entry point.
//
// The handler hijacks the HTTP connection after a wats-stream/1
// upgrade and speaks internal/wire frames over it: a HELLO with the
// workload table, then pipelined SUBMITs in and RESULTs out, results
// in completion order correlated by client-chosen request ids.
//
// One session is two goroutines: the handler goroutine reads SUBMIT
// frames, runs admission, and spawns jobs on pooled records
// (modeStream); a single writer goroutine owns the connection's write
// side and encodes RESULT frames from the session queue, which both
// finished jobs (via jobRec.afterFinish) and synthetic rejections
// (shed, draining, bad request — decided on the read side) flow
// through, so frame writes never interleave. The session WaitGroup
// counts every queued message; when the reader sees EOF it waits for
// in-flight jobs to finish and their results to be written, closes the
// queue, and the writer exits — which is exactly the zero-drop drain
// property: jobs admitted before a drain or disconnect still complete
// and are accounted, matching the unary path's semantics.
package server

import (
	"bufio"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"wats/internal/wire"
)

// streamWriteTimeout bounds one RESULT write; a client that stops
// reading forfeits the remaining results (they are drained and
// discarded so the records still recycle and jobs still account).
const streamWriteTimeout = 10 * time.Second

// streamQueueDepth is the session queue capacity. Submissions beyond it
// backpressure the producer (the finalizing worker or the reader), not
// the runtime.
const streamQueueDepth = 256

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != wire.Proto {
		httpError(w, http.StatusBadRequest, "expected Upgrade: %s", wire.Proto)
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting streams")
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		httpError(w, http.StatusInternalServerError, "connection does not support hijacking")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hijack: %v", err)
		return
	}
	s.serveStream(conn, bufrw)
}

// streamSession is one hijacked connection's state.
type streamSession struct {
	srv  *Server
	conn net.Conn
	outq chan streamOut
	wg   sync.WaitGroup // one count per queued message (job or rejection)

	// byID maps wire workload ids (HELLO table order) to workloads.
	byID []Workload
}

func (s *Server) serveStream(conn net.Conn, bufrw *bufio.ReadWriter) {
	defer conn.Close()
	ss := &streamSession{
		srv:  s,
		conn: conn,
		outq: make(chan streamOut, streamQueueDepth),
	}
	names := make([]string, 0, len(s.cfg.Workloads))
	for n := range s.cfg.Workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]wire.HelloEntry, 0, len(names))
	for i, n := range names {
		wl := s.cfg.Workloads[n]
		ss.byID = append(ss.byID, wl)
		entries = append(entries, wire.HelloEntry{ID: uint8(i), Name: wl.Name, Class: wl.Class})
	}
	if _, err := bufrw.WriteString("HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: " + wire.Proto + "\r\n\r\n"); err != nil {
		return
	}
	hello := wire.AppendHello(make([]byte, 0, 512), entries)
	if _, err := bufrw.Write(hello); err != nil {
		return
	}
	if err := bufrw.Flush(); err != nil {
		return
	}

	writerDone := make(chan struct{})
	go ss.writer(bufrw.Writer, writerDone)
	ss.read(bufrw.Reader)
	// Reader is done (EOF, protocol error, or client went away): every
	// admitted job still finishes and writes its result — the zero-drop
	// property a SIGTERM drain relies on.
	ss.wg.Wait()
	close(ss.outq)
	<-writerDone
}

// read is the session's receive loop: parse SUBMIT frames, admit, spawn.
func (ss *streamSession) read(br *bufio.Reader) {
	s := ss.srv
	buf := make([]byte, 0, 256)
	var sub wire.Submit
	for {
		ft, payload, nbuf, err := wire.ReadFrame(br, buf[:cap(buf)])
		buf = nbuf
		if err != nil {
			return
		}
		if ft != wire.FrameSubmit {
			return // protocol error: only SUBMIT flows client→server
		}
		if err := wire.ParseSubmit(payload, &sub); err != nil {
			return
		}
		if int(sub.Workload) >= len(ss.byID) {
			ss.reject(sub.ID, wire.OutcomeBadReq, "unknown workload id")
			continue
		}
		wl := &ss.byID[sub.Workload]
		p := Params{Size: int(sub.Size), Seed: sub.Seed, N: int(sub.N), Generations: int(sub.Generations)}
		if err := p.Validate(); err != nil {
			ss.reject(sub.ID, wire.OutcomeBadReq, err.Error())
			continue
		}
		if s.draining.Load() {
			ss.reject(sub.ID, wire.OutcomeDraining, "draining: not accepting jobs")
			continue
		}
		if s.reserve(1) == 0 {
			s.metrics.Shed()
			ss.reject(sub.ID, wire.OutcomeShed, "")
			continue
		}
		deadline := s.cfg.DefaultDeadline
		if sub.DeadlineMS > 0 {
			deadline = time.Duration(sub.DeadlineMS) * time.Millisecond
		}
		s.metrics.Submitted()
		rec := s.newRec()
		rec.notify = ss.outq
		rec.streamID = sub.ID
		ss.wg.Add(1)
		if err := s.startJob(rec, wl, p, deadline, modeStream); err != nil {
			// The record finalized as failed and its result frame is
			// already queued (afterFinish ran inline); only the runtime's
			// reference is missing — drop it for them.
			rec.unref()
		}
	}
}

// reject queues a synthetic non-job RESULT.
func (ss *streamSession) reject(reqID uint64, outcome byte, msg string) {
	ss.wg.Add(1)
	ss.outq <- streamOut{reqID: reqID, outcome: outcome, err: msg}
}

// writer owns the connection's write side: it encodes RESULT frames
// from the queue into a reused buffer, flushing whenever the queue goes
// momentarily empty. After a write error it keeps draining (records
// must still unref, the WaitGroup must still count down) but stops
// writing.
func (ss *streamSession) writer(bw *bufio.Writer, done chan struct{}) {
	defer close(done)
	buf := make([]byte, 0, 512)
	var res wire.Result
	var werr error
	for out := range ss.outq {
		res = wire.Result{ID: out.reqID, Outcome: out.outcome, Err: out.err}
		if out.rec != nil {
			ss.fill(&res, out.rec)
		}
		if res.Outcome == wire.OutcomeShed {
			res.RetryAfterMS = ss.srv.cfg.RetryAfter.Milliseconds()
		}
		if werr == nil {
			buf = wire.AppendResult(buf[:0], &res)
			_ = ss.conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if _, err := bw.Write(buf); err != nil {
				werr = err
			} else if len(ss.outq) == 0 {
				if err := bw.Flush(); err != nil {
					werr = err
				}
			}
		}
		if out.rec != nil {
			out.rec.unref()
		}
		ss.wg.Done()
	}
	if werr == nil {
		_ = ss.conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		_ = bw.Flush()
	}
}

// fill maps a finished record onto the wire result.
func (ss *streamSession) fill(res *wire.Result, r *jobRec) {
	r.mu.Lock()
	status, errStr, detail := r.status, r.errStr, r.detail
	started, finished, submitted := r.started, r.finished, r.submitted
	r.mu.Unlock()
	switch status {
	case StatusCompleted:
		res.Outcome = wire.OutcomeOK
	case StatusExpired:
		res.Outcome = wire.OutcomeExpired
	case StatusPanicked:
		res.Outcome = wire.OutcomePanicked
	default:
		res.Outcome = wire.OutcomeFailed
	}
	switch {
	case !started.IsZero():
		res.QueueWaitUS = started.Sub(submitted).Microseconds()
	case !finished.IsZero():
		res.QueueWaitUS = finished.Sub(submitted).Microseconds()
	}
	if !finished.IsZero() && !started.IsZero() {
		res.ExecUS = finished.Sub(started).Microseconds()
	}
	if detail != "" {
		res.Err = errStr + ": " + detail
	} else {
		res.Err = errStr
	}
}
