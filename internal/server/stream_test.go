package server

import (
	"context"
	"testing"
	"time"

	"wats/internal/client"
	"wats/internal/trace"
	"wats/internal/wire"
)

// dialStream opens a wats-stream/1 connection to the test server via the
// real client, exercising the handshake + HELLO path end to end.
func (e *testEnv) dialStream(t *testing.T) *client.StreamClient {
	t.Helper()
	c, err := client.New(client.Config{BaseURL: e.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := c.DialStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

// collect reads n results (any order) keyed by request id.
func collectResults(t *testing.T, sc *client.StreamClient, n int) map[uint64]wire.Result {
	t.Helper()
	got := make(map[uint64]wire.Result, n)
	timeout := time.After(30 * time.Second)
	for len(got) < n {
		select {
		case res, ok := <-sc.Results():
			if !ok {
				t.Fatalf("result stream closed after %d/%d results: %v", len(got), n, sc.Err())
			}
			got[res.ID] = res
		case <-timeout:
			t.Fatalf("timed out with %d/%d results", len(got), n)
		}
	}
	return got
}

// A pipelined burst over one connection: every submission gets exactly
// one correlated result, successes and per-item failures interleaved.
func TestStreamSubmitAndResults(t *testing.T) {
	e := newEnv(t, nil)
	sc := e.dialStream(t)
	noopID, ok := sc.WorkloadID("noop")
	if !ok {
		t.Fatalf("HELLO table missing noop: %+v", sc.Workloads())
	}
	sleepID, ok := sc.WorkloadID("sleep")
	if !ok {
		t.Fatal("HELLO table missing sleep")
	}
	const n = 32
	for i := uint64(1); i <= n; i++ {
		if err := sc.Submit(&wire.Submit{ID: i, Workload: noopID}); err != nil {
			t.Fatal(err)
		}
	}
	// An unknown workload id and an expiring sleeper ride the same burst.
	if err := sc.Submit(&wire.Submit{ID: 100, Workload: 200}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Submit(&wire.Submit{ID: 101, Workload: sleepID, N: 2000, DeadlineMS: 20}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, sc, n+2)
	for i := uint64(1); i <= n; i++ {
		if got[i].Outcome != wire.OutcomeOK {
			t.Errorf("job %d: outcome %d (%s), want OK", i, got[i].Outcome, got[i].Err)
		}
	}
	if got[100].Outcome != wire.OutcomeBadReq {
		t.Errorf("unknown workload: outcome %d, want BadReq", got[100].Outcome)
	}
	if got[101].Outcome != wire.OutcomeExpired {
		t.Errorf("expired sleeper: outcome %d (%s), want Expired", got[101].Outcome, got[101].Err)
	}
	if got[101].ExecUS > 1_000_000 {
		t.Errorf("expired sleeper ran %dus; deadline did not cut it", got[101].ExecUS)
	}
}

// Stream shed: with zero headroom a SUBMIT comes back OutcomeShed with a
// Retry-After hint, and the connection stays usable.
func TestStreamShed(t *testing.T) {
	release := make(chan struct{})
	e := newEnv(t, func(c *Config) {
		c.MaxInflight = 1
		c.Workloads["block"] = blockerWorkload(release)
	})
	sc := e.dialStream(t)
	blockID, _ := sc.WorkloadID("block")
	noopID, _ := sc.WorkloadID("noop")
	if err := sc.Submit(&wire.Submit{ID: 1, Workload: blockID}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return e.srv.Inflight() == 1 })
	if err := sc.Submit(&wire.Submit{ID: 2, Workload: noopID}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	shed := <-sc.Results()
	if shed.ID != 2 || shed.Outcome != wire.OutcomeShed {
		t.Fatalf("result %+v, want id 2 shed", shed)
	}
	if shed.RetryAfterMS <= 0 {
		t.Error("shed result without retry-after hint")
	}
	close(release)
	res := <-sc.Results()
	if res.ID != 1 || res.Outcome != wire.OutcomeOK {
		t.Fatalf("blocker result %+v, want id 1 OK", res)
	}
}

// Drain during in-flight streaming: admitted jobs complete and deliver
// results (zero drops), later submissions on the same connection come
// back OutcomeDraining, and new stream connections are refused.
func TestStreamDrainInFlight(t *testing.T) {
	release := make(chan struct{})
	e := newEnv(t, func(c *Config) {
		c.Workloads["block"] = blockerWorkload(release)
	})
	sc := e.dialStream(t)
	blockID, _ := sc.WorkloadID("block")
	noopID, _ := sc.WorkloadID("noop")
	const inflight = 3
	for i := uint64(1); i <= inflight; i++ {
		if err := sc.Submit(&wire.Submit{ID: i, Workload: blockID}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return e.srv.Inflight() == inflight })

	drained := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { drained <- e.srv.Drain(ctx) }()
	waitFor(t, 10*time.Second, func() bool { return e.srv.Draining() })

	// The drain is waiting on the blocked jobs; a new submission on the
	// live connection is refused without touching admission.
	if err := sc.Submit(&wire.Submit{ID: 50, Workload: noopID}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	if res := <-sc.Results(); res.ID != 50 || res.Outcome != wire.OutcomeDraining {
		t.Fatalf("submit during drain: %+v, want id 50 draining", res)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	got := collectResults(t, sc, inflight)
	for i := uint64(1); i <= inflight; i++ {
		if got[i].Outcome != wire.OutcomeOK {
			t.Errorf("in-flight job %d after drain: outcome %d, want OK (zero drops)", i, got[i].Outcome)
		}
	}
	// A fresh stream is refused while draining.
	c2, err := client.New(client.Config{BaseURL: e.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.DialStream(context.Background()); err == nil {
		t.Error("DialStream succeeded against a draining server")
	}
}

// Closing the client mid-flight must not lose accounting: admitted jobs
// still finish server-side and the session tears down cleanly.
func TestStreamClientDisconnectInFlight(t *testing.T) {
	release := make(chan struct{})
	e := newEnv(t, func(c *Config) {
		c.Workloads["block"] = blockerWorkload(release)
	})
	sc := e.dialStream(t)
	blockID, _ := sc.WorkloadID("block")
	for i := uint64(1); i <= 4; i++ {
		if err := sc.Submit(&wire.Submit{ID: i, Workload: blockID}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return e.srv.Inflight() == 4 })
	sc.Close()
	close(release)
	// The server finishes the admitted jobs and releases their slots even
	// though nobody is reading results anymore.
	waitInflightZero(t, e.srv)
}

// The ledger sees streaming entry exactly like unary entry: one decision
// + one end per admitted job; rejections (bad request) contribute none.
func TestStreamLedgerCaptureCounts(t *testing.T) {
	e := newObsEnv(t)
	path := t.TempDir() + "/stream-cap.ndjson"
	if _, err := e.srv.StartCapture(trace.CaptureConfig{Path: path}); err != nil {
		t.Fatal(err)
	}
	sc := e.dialStream(t)
	noopID, _ := sc.WorkloadID("noop")
	const n = 5
	for i := uint64(1); i <= n; i++ {
		if err := sc.Submit(&wire.Submit{ID: i, Workload: noopID}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Submit(&wire.Submit{ID: 99, Workload: 250}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, sc, n+1)
	if got[99].Outcome != wire.OutcomeBadReq {
		t.Fatalf("bad workload id: %+v", got[99])
	}
	e.rt.Wait()
	if _, err := e.srv.StopCapture(); err != nil {
		t.Fatal(err)
	}
	cap, err := trace.ParseCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Decisions) != n || len(cap.Ends) != n {
		t.Errorf("ledger: %d decisions / %d ends, want %d/%d for %d admitted jobs",
			len(cap.Decisions), len(cap.Ends), n, n, n)
	}
}
