package server

import stdruntime "runtime"

// version and commit identify a deployed binary. They are overridden at
// link time (see the Makefile's serve-demo/build flags):
//
//	go build -ldflags "-X wats/internal/server.version=v1.2.3 \
//	                   -X wats/internal/server.commit=$(git rev-parse --short HEAD)"
var (
	version = "dev"
	commit  = "unknown"
)

// BuildInfo identifies the running binary; served at GET /v1/version and
// logged at watsd startup.
type BuildInfo struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// Build returns the binary's build identification.
func Build() BuildInfo {
	return BuildInfo{Version: version, Commit: commit, GoVersion: stdruntime.Version()}
}
