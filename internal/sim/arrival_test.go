package sim

import (
	"math"
	"testing"

	"wats/internal/amc"
	"wats/internal/task"
)

// arrivalWorkload schedules tasks at fixed future offsets via InjectAt.
type arrivalWorkload struct {
	at    []float64
	tasks []*task.Task
}

func (w *arrivalWorkload) Name() string { return "arrivals" }
func (w *arrivalWorkload) Start(e *Engine) {
	for i, t := range w.tasks {
		e.InjectAt(w.at[i], t)
	}
}
func (w *arrivalWorkload) OnQuiescent(e *Engine) bool { return e.PendingArrivals() > 0 }

func TestInjectAtDelaysExecution(t *testing.T) {
	a := amc.MustNew("1c", amc.CGroup{Freq: 1, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1, CollectTasks: true})
	w := &arrivalWorkload{
		at:    []float64{0, 5},
		tasks: leafTasks("f", 1, 1),
	}
	res, err := e.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2 {
		t.Fatalf("tasks done: %d", res.TasksDone)
	}
	// First task runs [0,1]; the machine then idles until the second
	// arrival at t=5, which runs [5,6]. An engine that injected both at
	// t=0 would finish at 2.
	if math.Abs(res.Makespan-6) > 1e-9 {
		t.Fatalf("makespan=%v want 6 (arrival at t=5 must wait)", res.Makespan)
	}
	for _, tk := range res.Completed {
		if tk.Class == "f" && tk.EndT > 5 && math.Abs(tk.EndT-6) > 1e-9 {
			t.Fatalf("late task end: %v", tk.EndT)
		}
	}
}

func TestInjectAtPastClampsToNow(t *testing.T) {
	a := amc.MustNew("1c", amc.CGroup{Freq: 1, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1})
	res, err := e.Run(&arrivalWorkload{
		at:    []float64{-3, 0},
		tasks: leafTasks("f", 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2 || math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("res=%+v, want both tasks at t=0 finishing at 2", res)
	}
}

// TestArrivalsKeepEngineAlive checks the finish condition: a run with
// only future arrivals must not end at the first quiescent moment.
func TestArrivalsKeepEngineAlive(t *testing.T) {
	a := amc.MustNew("2c", amc.CGroup{Freq: 1, N: 2})
	e := New(a, &fifoPolicy{}, Config{Seed: 1})
	var at []float64
	var works []float64
	for i := 0; i < 10; i++ {
		at = append(at, float64(i)*2) // gaps guarantee idle periods
		works = append(works, 0.5)
	}
	res, err := e.Run(&arrivalWorkload{at: at, tasks: leafTasks("f", works...)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 10 {
		t.Fatalf("engine stopped early: %d/10 tasks", res.TasksDone)
	}
	if math.Abs(res.Makespan-18.5) > 1e-9 {
		t.Fatalf("makespan=%v want 18.5 (last arrival at 18 + 0.5 work)", res.Makespan)
	}
	if e.PendingArrivals() != 0 {
		t.Fatalf("pending arrivals left: %d", e.PendingArrivals())
	}
}
