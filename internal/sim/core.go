package sim

import (
	"wats/internal/rng"
	"wats/internal/task"
)

// Core is one simulated processor core.
type Core struct {
	// ID is the physical core number (fastest-first, as in Fig. 5).
	ID int
	// Group is the index of the c-group the core belongs to (0 = fastest).
	Group int
	// Rel is the core's speed relative to the fastest core, Fi/F1 in (0,1].
	Rel float64

	// Rng is the core's private random stream (victim selection).
	Rng *rng.Source

	// --- execution state (engine-owned) ---

	cur      *task.Task // task currently executing, nil if idle/dispatching
	segStart float64    // virtual time the current segment started
	segWork  float64    // own-work units the current segment covers
	token    int64      // run token; bumping it invalidates pending evSegEnd
	idle     bool       // true when parked waiting for work
	// inline is the stack of tasks suspended on this core under the
	// child-first discipline whose continuations sit in this core's own
	// pools. While a task is on this stack, segments executed by this core
	// are also charged to its Measured workload — the §III-C
	// mis-measurement that makes child-first unusable for WATS.
	inline []*task.Task

	// --- per-core statistics ---

	// Busy is total virtual time spent executing task segments.
	Busy float64
	// Overhead is virtual time spent on steals, failed steals and snatches.
	Overhead float64
	// Steals counts successful steals; FailedAcquires counts Acquire calls
	// that found no work anywhere; Snatches counts successful snatch
	// operations initiated by this core; SnatchedFrom counts preemptions
	// suffered.
	Steals, LocalPops, FailedAcquires, Snatches, SnatchedFrom int
	// TasksRun counts task completions on this core.
	TasksRun int
}

// Running returns the task currently executing on the core, or nil.
func (c *Core) Running() *task.Task { return c.cur }

// Idle reports whether the core is parked waiting for work.
func (c *Core) Idle() bool { return c.idle }

// removeInline deletes t from the inline stack if present.
func (c *Core) removeInline(t *task.Task) {
	for i, u := range c.inline {
		if u == t {
			c.inline = append(c.inline[:i], c.inline[i+1:]...)
			return
		}
	}
}
