// Package sim is a deterministic discrete-event simulator of task
// scheduling on Asymmetric Multi-Core (AMC) architectures.
//
// The simulator stands in for the paper's testbed — a 16-core AMD Opteron
// 8380 whose per-core DVFS settings emulate the seven AMC architectures of
// Table II. Scheduling logic (per-core deques, random and preference-based
// stealing, task snatching, the history-based allocator's helper thread)
// executes exactly as specified by the paper; only the consumption of CPU
// cycles is virtualized: a core of relative speed Rel executes w units of
// fastest-core work in w/Rel units of virtual time.
//
// Workload ground truth (task.Task.Work) is invisible to policies; they
// observe only Eq.2-normalized measurements of completed tasks, as the
// real system would through performance counters.
package sim

import (
	"fmt"
	"math"

	"wats/internal/amc"
	"wats/internal/rng"
	"wats/internal/task"
)

// Config holds the engine's cost model and tunables. Zero values are
// replaced by defaults documented on each field.
type Config struct {
	// Seed seeds all random streams. Two runs with equal Config, Policy
	// and Workload produce identical traces.
	Seed uint64
	// StealCost is the virtual time a successful steal costs the thief
	// (lock + deque transfer). Default 2e-6 (2 µs).
	StealCost float64
	// SpawnCost is charged when a task spawns a child. Default 1e-7.
	SpawnCost float64
	// SnatchCost is Δs of §II-A: the fixed cost of a snatch — swapping the
	// two OS threads between cores (it is charged to the thief, and the
	// victim restarts after the same delay). Default 15e-3 (15 ms).
	SnatchCost float64
	// SnatchReworkFrac models the cold-cache restart of a migrated task:
	// the snatched task loses this fraction of its completed work (its
	// working set must be rebuilt on the thief core, and the larger the
	// progress, the larger the footprint). This is what makes snatching
	// profitable for rescuing catastrophic strandings (RTS on badly
	// random-allocated heavy tasks) yet a net loss when workloads are
	// already balanced (the paper’s Fig. 10 finding that WATS-TS is
	// slightly worse than WATS). Default 0.15; set negative for 0.
	SnatchReworkFrac float64
	// HelperPeriod is the helper-thread tick interval (§III-C: "e.g.,
	// every 1ms"). Default 1e-3.
	HelperPeriod float64
	// MaxVirtualTime aborts runaway simulations. Default 1e7 seconds.
	MaxVirtualTime float64
	// MeasureInline, when true (the default unless DisableInline is set),
	// charges segments executed on a core to the suspended child-first
	// parents stacked on that core, reproducing the parent-workload
	// mis-measurement of §III-C.
	DisableInlineMeasurement bool
	// CollectTasks retains every completed task in the result for
	// detailed post-analysis (costs memory on large runs).
	CollectTasks bool
	// Tracer, if non-nil, receives segment/steal/snatch/completion
	// events (see package trace for a recorder).
	Tracer Tracer
	// DVFS schedules core-speed changes during the run (thermal
	// throttling, frequency scaling). A change mid-task re-times the
	// task's remaining work at the new speed; completed progress is
	// preserved. Note that Result.LowerBound is computed from the
	// *initial* speeds and is no longer a true bound when speeds rise.
	DVFS []SpeedEvent
}

// SpeedEvent is one scheduled DVFS transition: at virtual time At, core
// Core's frequency becomes Freq (same unit as the architecture's; the
// relative speed is recomputed against the original fastest frequency).
type SpeedEvent struct {
	At   float64
	Core int
	Freq float64
}

func (c Config) withDefaults() Config {
	if c.StealCost == 0 {
		c.StealCost = 2e-6
	}
	if c.SpawnCost == 0 {
		c.SpawnCost = 1e-7
	}
	if c.SnatchCost == 0 {
		c.SnatchCost = 15e-3
	}
	if c.SnatchReworkFrac == 0 {
		c.SnatchReworkFrac = 0.15
	}
	if c.SnatchReworkFrac < 0 {
		c.SnatchReworkFrac = 0
	}
	if c.HelperPeriod == 0 {
		c.HelperPeriod = 1e-3
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 1e7
	}
	return c
}

// Policy is a task-scheduling policy plugged into the engine. Policies own
// the task pools; the engine owns cores, virtual time and task execution.
// All methods are called from the single-threaded event loop.
type Policy interface {
	// Name identifies the policy in reports ("Cilk", "WATS", ...).
	Name() string
	// ChildFirst selects the spawn discipline: true for work-first (MIT
	// Cilk), false for parent-first (PFT, WATS).
	ChildFirst() bool
	// Init is called once before the run starts.
	Init(e *Engine)
	// Inject routes an externally created task (main-task spawn or
	// pipeline successor) into a pool. origin is the core on whose behalf
	// the injection happens (the fastest core for the main task).
	Inject(origin *Core, t *task.Task)
	// Enqueue routes a task spawned by core c: a child under parent-first,
	// or a suspended parent continuation under child-first.
	Enqueue(c *Core, t *task.Task)
	// Acquire obtains the next task for an idle core, implementing the
	// policy's local-pop/steal/snatch logic. It returns the task (nil if
	// none found anywhere) and the virtual-time overhead spent obtaining
	// it (steal or snatch cost; 0 for a local pop).
	Acquire(c *Core) (t *task.Task, overhead float64)
	// OnComplete is called when a task finishes on core c (history
	// updates for WATS).
	OnComplete(c *Core, t *task.Task)
	// OnHelperTick is the periodic helper-thread body (§III-C): WATS
	// reorganizes task clusters here.
	OnHelperTick(e *Engine)
}

// Workload drives task creation. Start is called once at virtual time 0;
// OnQuiescent is called whenever every injected task has completed, and
// reports whether it injected more work (false ends the run). Pipeline
// workloads may additionally inject from task OnComplete hooks at any time.
type Workload interface {
	Name() string
	Start(e *Engine)
	OnQuiescent(e *Engine) bool
}

// Engine is the discrete-event simulation engine.
type Engine struct {
	Arch   *amc.Arch
	Policy Policy
	Cfg    Config
	Rng    *rng.Source

	cores []*Core
	now   float64
	seq   int64
	ev    eventHeap

	outstanding int     // injected + spawned tasks not yet completed
	lastDone    float64 // completion time of the most recent task
	nextTaskID  int
	injectCore  *Core // core on whose behalf OnComplete hooks inject

	workload Workload
	finished bool
	// mainQ holds injected Main tasks; only the fastest core (core 0)
	// executes them, per §IV-E.
	mainQ []*task.Task
	// arrivals holds tasks pre-registered by InjectAt for future
	// injection (open-loop trace replay); pendingArrivals counts the ones
	// whose evArrival has not fired yet, keeping the run alive while the
	// system is drained between arrivals.
	arrivals        []*task.Task
	pendingArrivals int

	// --- run statistics ---
	tasksDone   int
	totalWork   float64 // ground-truth work of completed tasks (F1 units)
	classTruth  map[string]*truth
	completed   []*task.Task
	helperTicks int
	quiescents  []float64 // times the system fully drained (batch ends)
}

type truth struct {
	n   int
	sum float64
}

// New builds an engine for the given architecture, policy and config.
func New(a *amc.Arch, p Policy, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		Arch:       a,
		Policy:     p,
		Cfg:        cfg,
		Rng:        rng.New(cfg.Seed),
		classTruth: map[string]*truth{},
	}
	f1 := a.FastestFreq()
	for c := 0; c < a.NumCores(); c++ {
		e.cores = append(e.cores, &Core{
			ID:    c,
			Group: a.GroupOf(c),
			Rel:   a.Speed(c) / f1,
			Rng:   e.Rng.Split(),
			idle:  true,
		})
	}
	return e
}

// Cores exposes the simulated cores to policies.
func (e *Engine) Cores() []*Core { return e.cores }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// NumGroups returns the number of c-groups in the architecture.
func (e *Engine) NumGroups() int { return e.Arch.K() }

func (e *Engine) schedule(at float64, kind eventKind, core int, token int64) {
	e.seq++
	e.ev.push(event{at: at, seq: e.seq, kind: kind, core: core, token: token})
}

// Inject introduces an externally created task at the current virtual
// time. During task OnComplete hooks the injection is attributed to the
// completing core; otherwise to the fastest core (the paper schedules the
// main task on the fastest core, §IV-E).
func (e *Engine) Inject(t *task.Task) {
	origin := e.injectCore
	if origin == nil {
		origin = e.cores[0]
	}
	e.prepare(t, nil, 0)
	if t.Main {
		// The main task bypasses the policy's pools: it runs on the
		// fastest core, for every scheduler alike (§IV-E).
		e.mainQ = append(e.mainQ, t)
		c0 := e.cores[0]
		if c0.idle {
			c0.idle = false
			e.schedule(e.now, evDispatch, 0, 0)
		}
		return
	}
	e.Policy.Inject(origin, t)
	e.WakeIdle()
}

// InjectAt schedules t for injection at virtual time at (clamped to the
// current time when in the past) — the open-loop arrival primitive for
// trace replay. Unlike a Main root task fanning children out, arrivals
// occupy no core until their time comes, so the simulated machine idles
// between arrivals exactly like the live service did. Call it from
// Workload.Start (or any point before the run finishes); the engine
// keeps running while arrivals are pending even when fully drained.
func (e *Engine) InjectAt(at float64, t *task.Task) {
	if at < e.now {
		at = e.now
	}
	e.arrivals = append(e.arrivals, t)
	e.pendingArrivals++
	e.schedule(at, evArrival, 0, int64(len(e.arrivals)-1))
}

// PendingArrivals returns the number of InjectAt arrivals not yet
// injected.
func (e *Engine) PendingArrivals() int { return e.pendingArrivals }

// prepare assigns IDs and initial state to a task (not its spawn-tree
// descendants; those are prepared when their spawn point fires).
func (e *Engine) prepare(t *task.Task, parent *task.Task, depth int) {
	e.nextTaskID++
	t.ID = e.nextTaskID
	t.State = task.Queued
	t.StartT = -1
	t.Parent = parent
	t.Depth = depth
	t.SortSpawns()
	e.outstanding++
}

// WakeIdle re-dispatches every parked core at the current time. Policies
// call it if they move work around outside the engine's spawn path.
func (e *Engine) WakeIdle() {
	for _, c := range e.cores {
		if c.idle {
			c.idle = false
			e.schedule(e.now, evDispatch, c.ID, 0)
		}
	}
}

// execRate returns the work-per-virtual-time rate of task t on core c:
// CPU work scales with the core's relative speed, the task's memory-stall
// fraction does not (§IV-E extension; MemFrac=0 gives the plain c.Rel).
func execRate(c *Core, t *task.Task) float64 {
	mf := t.MemFrac
	if mf <= 0 {
		return c.Rel
	}
	if mf > 1 {
		mf = 1
	}
	return 1 / ((1-mf)/c.Rel + mf)
}

// startTask begins (or resumes) execution of t on core c after the given
// overhead delay. It schedules the segment-end event for the stretch up to
// the next spawn point or task end.
func (e *Engine) startTask(c *Core, t *task.Task, delay float64) {
	c.idle = false
	c.cur = t
	c.Overhead += delay
	t.State = task.Running
	t.LastCore = c.ID
	if t.StartT < 0 {
		t.StartT = e.now
	}
	c.removeInline(t) // resuming an inline-suspended continuation
	seg := t.NextStop() - t.Done_
	if seg < 0 {
		seg = 0
	}
	c.segWork = seg
	c.segStart = e.now + delay
	c.token++
	e.schedule(e.now+delay+seg/execRate(c, t), evSegEnd, c.ID, c.token)
}

// chargeSegment accounts an executed stretch of segWork own-work units on
// core c to the running task and to any child-first parents suspended
// inline on the core. The charged measurement is what a reference-cycle
// performance counter would see after Eq. 2 normalization: elapsed time ×
// Fi/F1. For pure CPU-bound tasks that equals segWork exactly; for
// memory-bound tasks it is distorted by where the task ran — a realistic
// property of counter-based measurement the memory-aware variant must
// tolerate.
func (e *Engine) chargeSegment(c *Core, t *task.Task, segWork, segTime float64) {
	c.Busy += segTime
	if e.Cfg.Tracer != nil && segTime > 0 {
		e.Cfg.Tracer.Segment(c.ID, t.ID, t.Class, e.now-segTime, e.now)
	}
	measured := segTime * c.Rel
	t.Measured += measured
	if !e.Cfg.DisableInlineMeasurement {
		for _, p := range c.inline {
			if p != t {
				p.Measured += measured
			}
		}
	}
}

// Preempt stops the task currently running on victim core v, charging the
// partially executed segment, and returns the task so the thief (a faster
// core) can finish it (the snatch operation of RTS and WATS-TS). The
// victim is re-dispatched after the snatch cost. Returns nil if v runs
// nothing.
func (e *Engine) Preempt(v *Core, thief *Core) *task.Task {
	t := v.cur
	if t == nil {
		return nil
	}
	if e.Cfg.Tracer != nil {
		e.Cfg.Tracer.Snatch(thief.ID, v.ID, t.ID, e.now)
	}
	elapsed := e.now - v.segStart
	if elapsed < 0 {
		elapsed = 0
	}
	rate := execRate(v, t)
	workDone := elapsed * rate
	if workDone > v.segWork {
		workDone = v.segWork
	}
	e.chargeSegment(v, t, workDone, math.Min(elapsed, v.segWork/rate))
	t.Done_ += workDone
	// Cold-cache restart: the migrated task redoes part of its work on
	// the thief core (its working set does not travel with the thread).
	t.Done_ -= e.Cfg.SnatchReworkFrac * t.Done_
	if t.Done_ < 0 {
		t.Done_ = 0
	}
	t.State = task.Suspended
	v.cur = nil
	v.token++ // invalidate the pending evSegEnd
	v.SnatchedFrom++
	v.idle = false
	e.schedule(e.now+e.Cfg.SnatchCost, evDispatch, v.ID, 0)
	return t
}

// EstimatedRemaining returns a policy-visible estimate of the remaining
// normalized work of the task running on core v, using the class average
// estimate est (pass <0 if the class is unknown). Policies use it for
// workload-aware snatching (WATS-TS).
func (e *Engine) EstimatedRemaining(v *Core, est float64) float64 {
	t := v.cur
	if t == nil {
		return 0
	}
	elapsed := e.now - v.segStart
	if elapsed < 0 {
		elapsed = 0
	}
	doneNorm := t.Done_ + elapsed*execRate(v, t)
	if est < 0 {
		// Unknown class: all we know is it has run for doneNorm already.
		return doneNorm
	}
	r := est - doneNorm
	if r < 0 {
		r = 0
	}
	return r
}

// Run executes the workload to completion and returns the result.
func (e *Engine) Run(w Workload) (*Result, error) {
	e.workload = w
	e.Policy.Init(e)
	w.Start(e)
	if e.outstanding == 0 && e.pendingArrivals == 0 {
		return nil, fmt.Errorf("sim: workload %q injected no tasks", w.Name())
	}
	for _, c := range e.cores {
		c.idle = false
		e.schedule(0, evDispatch, c.ID, 0)
	}
	e.schedule(e.Cfg.HelperPeriod, evHelper, 0, 0)
	for i, sp := range e.Cfg.DVFS {
		if sp.Core < 0 || sp.Core >= len(e.cores) || sp.At < 0 || sp.Freq <= 0 {
			return nil, fmt.Errorf("sim: invalid DVFS event %d: %+v", i, sp)
		}
		// The event index rides in the token field.
		e.schedule(sp.At, evSpeed, sp.Core, int64(i))
	}

	for e.ev.Len() > 0 && !e.finished {
		ev := e.ev.pop()
		if ev.at < e.now {
			return nil, fmt.Errorf("sim: time went backwards (%g < %g)", ev.at, e.now)
		}
		e.now = ev.at
		if e.now > e.Cfg.MaxVirtualTime {
			return nil, fmt.Errorf("sim: exceeded MaxVirtualTime=%g with %d tasks outstanding (policy %s, workload %s)",
				e.Cfg.MaxVirtualTime, e.outstanding, e.Policy.Name(), w.Name())
		}
		switch ev.kind {
		case evDispatch:
			e.handleDispatch(e.cores[ev.core])
		case evSegEnd:
			c := e.cores[ev.core]
			if ev.token != c.token || c.cur == nil {
				break // stale: the task was preempted
			}
			e.handleSegEnd(c)
		case evHelper:
			e.helperTicks++
			e.Policy.OnHelperTick(e)
			e.schedule(e.now+e.Cfg.HelperPeriod, evHelper, 0, 0)
		case evArrival:
			e.pendingArrivals--
			e.Inject(e.arrivals[ev.token])
		case evSpeed:
			e.applySpeed(e.Cfg.DVFS[ev.token])
		}
	}
	return e.result(), nil
}

func (e *Engine) handleDispatch(c *Core) {
	if c.cur != nil {
		return // already running (stale wakeup)
	}
	if c.ID == 0 && len(e.mainQ) > 0 {
		t := e.mainQ[0]
		e.mainQ = e.mainQ[1:]
		e.startTask(c, t, 0)
		return
	}
	t, overhead := e.Policy.Acquire(c)
	if t == nil {
		c.FailedAcquires++
		c.idle = true
		return
	}
	c.Overhead += 0 // overhead charged via startTask delay
	e.startTask(c, t, overhead)
}

func (e *Engine) handleSegEnd(c *Core) {
	t := c.cur
	segTime := c.segWork / execRate(c, t)
	e.chargeSegment(c, t, c.segWork, segTime)
	t.Done_ = t.NextStop()

	// Spawn point?
	if t.NextSpawn < len(t.Spawns) && t.Done_ >= t.Spawns[t.NextSpawn].At {
		child := t.Spawns[t.NextSpawn].Child
		t.NextSpawn++
		e.prepare(child, t, t.Depth+1)
		if e.Policy.ChildFirst() {
			// Work-first (MIT Cilk): suspend the parent, expose its
			// continuation for stealing, run the child immediately.
			t.State = task.Suspended
			c.cur = nil
			c.inline = append(c.inline, t)
			e.Policy.Enqueue(c, t)
			e.WakeIdle()
			e.startTask(c, child, e.Cfg.SpawnCost)
		} else {
			// Parent-first: queue the child, keep running the parent.
			child.State = task.Queued
			e.Policy.Enqueue(c, child)
			e.WakeIdle()
			e.startTask(c, t, e.Cfg.SpawnCost)
		}
		return
	}

	// Task complete.
	t.State = task.Done
	t.EndT = e.now
	if e.Cfg.Tracer != nil {
		e.Cfg.Tracer.Complete(c.ID, t.ID, t.Class, e.now)
	}
	c.cur = nil
	c.TasksRun++
	e.tasksDone++
	e.totalWork += t.Work
	e.lastDone = e.now
	tr := e.classTruth[t.Class]
	if tr == nil {
		tr = &truth{}
		e.classTruth[t.Class] = tr
	}
	tr.n++
	tr.sum += t.Work
	if e.Cfg.CollectTasks {
		e.completed = append(e.completed, t)
	}
	e.Policy.OnComplete(c, t)
	if t.OnComplete != nil {
		e.injectCore = c
		t.OnComplete(t)
		e.injectCore = nil
	}
	e.outstanding--
	if e.outstanding == 0 {
		e.quiescents = append(e.quiescents, e.now)
		e.injectCore = c
		more := e.workload.OnQuiescent(e)
		e.injectCore = nil
		if !more && e.outstanding == 0 && e.pendingArrivals == 0 {
			e.finished = true
			return
		}
	}
	// The core immediately looks for its next task.
	e.schedule(e.now, evDispatch, c.ID, 0)
}

// applySpeed performs a DVFS transition: if the core is mid-task, the
// progress so far is charged at the old speed and the remainder re-timed
// at the new one (frequency switches are treated as instantaneous; add a
// cost by scheduling idle time in the workload if needed).
func (e *Engine) applySpeed(sp SpeedEvent) {
	c := e.cores[sp.Core]
	newRel := sp.Freq / e.Arch.FastestFreq()
	if c.cur == nil {
		c.Rel = newRel
		return
	}
	t := c.cur
	elapsed := e.now - c.segStart
	if elapsed < 0 {
		// Segment not started yet (overhead delay pending): just switch.
		c.Rel = newRel
		c.token++
		e.startTask(c, t, c.segStart-e.now)
		return
	}
	rate := execRate(c, t)
	workDone := elapsed * rate
	if workDone > c.segWork {
		workDone = c.segWork
	}
	e.chargeSegment(c, t, workDone, elapsed)
	t.Done_ += workDone
	c.Rel = newRel
	c.token++ // invalidate the old segment-end event
	c.cur = nil
	e.startTask(c, t, 0)
}

// NoteDequeued informs the engine that task t left core owner's pools
// (popped locally or stolen). The engine uses it to maintain the inline
// measurement stacks of the child-first discipline.
func (e *Engine) NoteDequeued(owner *Core, t *task.Task) {
	owner.removeInline(t)
}
