package sim

import (
	"math"
	"testing"

	"wats/internal/amc"
	"wats/internal/task"
)

// fifoPolicy is a trivial test policy: one pool per core, random steal,
// configurable spawn discipline.
type fifoPolicy struct {
	childFirst bool
	e          *Engine
	pools      *PoolSet
}

func (p *fifoPolicy) Name() string     { return "fifo" }
func (p *fifoPolicy) ChildFirst() bool { return p.childFirst }
func (p *fifoPolicy) Init(e *Engine) {
	p.e = e
	p.pools = NewPoolSet(e, 1)
}
func (p *fifoPolicy) Inject(origin *Core, t *task.Task) { p.pools.Push(origin.ID, 0, t) }
func (p *fifoPolicy) Enqueue(c *Core, t *task.Task)     { p.pools.Push(c.ID, 0, t) }
func (p *fifoPolicy) OnComplete(c *Core, t *task.Task)  {}
func (p *fifoPolicy) OnHelperTick(e *Engine)            {}
func (p *fifoPolicy) Acquire(c *Core) (*task.Task, float64) {
	if t := p.pools.PopBottom(c.ID, 0); t != nil {
		return t, 0
	}
	if t := p.pools.StealRandom(c, 0); t != nil {
		return t, p.e.Cfg.StealCost
	}
	return nil, 0
}

// listWorkload injects a fixed set of tasks at t=0.
type listWorkload struct {
	tasks []*task.Task
}

func (w *listWorkload) Name() string { return "list" }
func (w *listWorkload) Start(e *Engine) {
	for _, t := range w.tasks {
		e.Inject(t)
	}
}
func (w *listWorkload) OnQuiescent(e *Engine) bool { return false }

func leafTasks(class string, works ...float64) []*task.Task {
	var out []*task.Task
	for _, w := range works {
		out = append(out, task.New(class, w))
	}
	return out
}

func TestSingleTaskSingleCore(t *testing.T) {
	a := amc.MustNew("1c", amc.CGroup{Freq: 2, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 3)})
	if err != nil {
		t.Fatal(err)
	}
	// One core at relative speed 1 (it is the fastest): 3 units take 3s.
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Fatalf("makespan=%v want 3", res.Makespan)
	}
	if res.TasksDone != 1 || res.TotalWork != 3 {
		t.Fatalf("res=%+v", res)
	}
}

func TestSlowCoreScaling(t *testing.T) {
	// Two groups; force execution on the slow core by saturating both.
	a := amc.MustNew("2c", amc.CGroup{Freq: 2, N: 1}, amc.CGroup{Freq: 1, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1})
	// Two equal tasks: fast core finishes at w, slow at 2w.
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2) > 1e-4 {
		t.Fatalf("makespan=%v want ~2 (slow core at half speed)", res.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() (*Result, error) {
		tasks := leafTasks("f", 1, 2, 3, 0.5, 0.7, 1.1, 2.2, 0.9)
		e := New(amc.AMC1, &fifoPolicy{}, Config{Seed: 42})
		return e.Run(&listWorkload{tasks: tasks})
	}
	r1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Steals != r2.Steals {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", r1.Makespan, r1.Steals, r2.Makespan, r2.Steals)
	}
}

func TestWorkConservation(t *testing.T) {
	works := []float64{1, 2, 3, 0.5, 0.7, 1.1, 2.2, 0.9, 4, 0.1}
	var total float64
	for _, w := range works {
		total += w
	}
	e := New(amc.AMC2, &fifoPolicy{}, Config{Seed: 7})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", works...)})
	if err != nil {
		t.Fatal(err)
	}
	// Busy time on core i * Rel_i = work executed there; the sum must be
	// exactly the injected work.
	var executed float64
	for _, c := range res.Cores {
		executed += c.Busy * c.Rel
	}
	if math.Abs(executed-total) > 1e-9 {
		t.Fatalf("executed %v != injected %v", executed, total)
	}
	if math.Abs(res.TotalWork-total) > 1e-9 {
		t.Fatalf("TotalWork=%v want %v", res.TotalWork, total)
	}
}

func TestMakespanAtLeastLowerBound(t *testing.T) {
	e := New(amc.AMC5, &fifoPolicy{}, Config{Seed: 9})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 1, 2, 3, 4, 5, 0.5, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < res.LowerBound-1e-9 {
		t.Fatalf("makespan %v below Lemma 1 bound %v", res.Makespan, res.LowerBound)
	}
	if res.Utilization() > 1+1e-9 {
		t.Fatalf("utilization %v above 1", res.Utilization())
	}
}

func TestSpawnTreeParentFirst(t *testing.T) {
	// Root of work 2 spawning two children at offsets 0.5 and 1.5.
	root := task.New("root", 2)
	root.Spawns = []task.Spawn{
		{At: 0.5, Child: task.New("child", 1)},
		{At: 1.5, Child: task.New("child", 1)},
	}
	a := amc.MustNew("2c", amc.CGroup{Freq: 1, N: 2})
	e := New(a, &fifoPolicy{childFirst: false}, Config{Seed: 1, SpawnCost: 0})
	res, err := e.Run(&listWorkload{tasks: []*task.Task{root}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 3 {
		t.Fatalf("TasksDone=%d want 3", res.TasksDone)
	}
	// Parent-first: root runs 0..2 on core 0; child1 spawns at 0.5 and is
	// stolen by core 1 (runs 0.5..1.5); child2 spawns at 1.5, core 1 or 0
	// picks it up at ~1.5/2 => makespan 2.5 + steal costs.
	if res.Makespan < 2.5-1e-9 || res.Makespan > 2.6 {
		t.Fatalf("makespan=%v want ~2.5", res.Makespan)
	}
	if math.Abs(root.Measured-2) > 1e-9 {
		t.Fatalf("parent-first measured %v, want exactly own work 2", root.Measured)
	}
}

func TestChildFirstMeasurementCorruption(t *testing.T) {
	// §III-C: under child-first spawning, a parent's cycle counter also
	// accumulates inline-executed children, so its measured workload is
	// corrupted. One core forces inline execution.
	mk := func(childFirst bool) *task.Task {
		root := task.New("root", 2)
		root.Spawns = []task.Spawn{{At: 1, Child: task.New("child", 3)}}
		a := amc.MustNew("1c", amc.CGroup{Freq: 1, N: 1})
		e := New(a, &fifoPolicy{childFirst: childFirst}, Config{Seed: 1, SpawnCost: 0})
		if _, err := e.Run(&listWorkload{tasks: []*task.Task{root}}); err != nil {
			t.Fatal(err)
		}
		return root
	}
	pf := mk(false)
	if math.Abs(pf.Measured-2) > 1e-9 {
		t.Fatalf("parent-first measured %v want 2", pf.Measured)
	}
	cf := mk(true)
	if math.Abs(cf.Measured-5) > 1e-9 {
		t.Fatalf("child-first measured %v want 5 (own 2 + inline child 3)", cf.Measured)
	}
}

func TestChildFirstContinuationStealing(t *testing.T) {
	// With two cores, the suspended parent's continuation must be
	// stealable: core 1 takes it while core 0 runs the child.
	root := task.New("root", 2)
	root.Spawns = []task.Spawn{{At: 0.5, Child: task.New("child", 2)}}
	a := amc.MustNew("2c", amc.CGroup{Freq: 1, N: 2})
	e := New(a, &fifoPolicy{childFirst: true}, Config{Seed: 1, SpawnCost: 0, StealCost: 0})
	res, err := e.Run(&listWorkload{tasks: []*task.Task{root}})
	if err != nil {
		t.Fatal(err)
	}
	// Core 0: 0.5 of root + child (2) = 2.5; core 1: remaining 1.5 of
	// root ending at 0.5+1.5=2. Makespan 2.5.
	if math.Abs(res.Makespan-2.5) > 1e-6 {
		t.Fatalf("makespan=%v want 2.5", res.Makespan)
	}
	// Parent resumed on the other core, so no inline corruption.
	if math.Abs(root.Measured-2) > 1e-9 {
		t.Fatalf("stolen continuation should measure own work only: %v", root.Measured)
	}
}

func TestPreempt(t *testing.T) {
	a := amc.MustNew("2c", amc.CGroup{Freq: 2, N: 1}, amc.CGroup{Freq: 1, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1})
	// Manually drive: start a long task on the slow core.
	e.Policy.Init(e)
	slow := e.Cores()[1]
	long := task.New("f", 10)
	e.prepare(long, nil, 0)
	e.startTask(slow, long, 0)
	// Advance virtual time artificially via the event loop is complex;
	// instead preempt immediately: zero progress.
	got := e.Preempt(slow, e.Cores()[0])
	if got != long {
		t.Fatalf("Preempt returned %v", got)
	}
	if slow.Running() != nil {
		t.Fatal("victim still running after preempt")
	}
	if got.State != task.Suspended {
		t.Fatalf("state=%v", got.State)
	}
	if slow.SnatchedFrom != 1 {
		t.Fatalf("SnatchedFrom=%d", slow.SnatchedFrom)
	}
	if e.Preempt(e.Cores()[0], slow) != nil {
		t.Fatal("Preempt of idle core should return nil")
	}
}

func TestSnatchRework(t *testing.T) {
	// A task preempted mid-flight loses SnatchReworkFrac of its progress.
	a := amc.MustNew("2c", amc.CGroup{Freq: 1, N: 2})
	cfg := Config{Seed: 1, SnatchReworkFrac: 0.5}
	e := New(a, &fifoPolicy{}, cfg)
	e.Policy.Init(e)
	c := e.Cores()[0]
	tk := task.New("f", 10)
	e.prepare(tk, nil, 0)
	e.startTask(c, tk, 0)
	// Simulate elapsed time by moving the segment start back.
	c.segStart = -4 // 4 seconds "ago" at rel 1 => 4 units done
	e.Preempt(c, e.Cores()[1])
	if math.Abs(tk.Done_-2) > 1e-9 {
		t.Fatalf("Done=%v want 2 (4 done, half lost to rework)", tk.Done_)
	}
}

func TestEmptyWorkloadError(t *testing.T) {
	e := New(amc.AMC7, &fifoPolicy{}, Config{Seed: 1})
	if _, err := e.Run(&listWorkload{}); err == nil {
		t.Fatal("empty workload should error")
	}
}

type neverEndingWorkload struct{ started bool }

func (w *neverEndingWorkload) Name() string { return "never" }
func (w *neverEndingWorkload) Start(e *Engine) {
	e.Inject(task.New("f", 1))
}
func (w *neverEndingWorkload) OnQuiescent(e *Engine) bool {
	return true // claims more work is coming but never injects any
}

func TestMaxVirtualTimeGuard(t *testing.T) {
	e := New(amc.AMC7, &fifoPolicy{}, Config{Seed: 1, MaxVirtualTime: 10})
	if _, err := e.Run(&neverEndingWorkload{}); err == nil {
		t.Fatal("runaway run should hit MaxVirtualTime")
	}
}

func TestOnCompleteInjection(t *testing.T) {
	// A task whose completion injects a successor (pipeline mechanics);
	// the successor is attributed to the completing core.
	var successorCore = -1
	first := task.New("a", 1)
	var e *Engine
	first.OnComplete = func(done *task.Task) {
		succ := task.New("b", 1)
		e.Inject(succ)
	}
	a := amc.MustNew("2c", amc.CGroup{Freq: 1, N: 2})
	p := &fifoPolicy{}
	e = New(a, p, Config{Seed: 1})
	res, err := e.Run(&listWorkload{tasks: []*task.Task{first}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2 {
		t.Fatalf("TasksDone=%d want 2", res.TasksDone)
	}
	if math.Abs(res.Makespan-2) > 1e-4 {
		t.Fatalf("makespan=%v want 2 (chained)", res.Makespan)
	}
	_ = successorCore
}

func TestHelperTicks(t *testing.T) {
	e := New(amc.AMC7, &fifoPolicy{}, Config{Seed: 1, HelperPeriod: 0.25})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 16)})
	if err != nil {
		t.Fatal(err)
	}
	// 16 units of work on 16 unit-speed cores... all on one core? No:
	// a single 16-unit task runs on one core for 16s; helper ticks every
	// 0.25s => ~64 ticks.
	if res.HelperTicks < 60 {
		t.Fatalf("HelperTicks=%d, want ~64", res.HelperTicks)
	}
}

func TestResultAccessorsAndStrings(t *testing.T) {
	e := New(amc.AMC1, &fifoPolicy{}, Config{Seed: 1, CollectTasks: true})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 3 {
		t.Fatalf("Completed=%d", len(res.Completed))
	}
	if res.String() == "" || res.Detail() == "" {
		t.Fatal("empty renderings")
	}
	if res.OptimalityGap() < 0 {
		t.Fatalf("gap=%v", res.OptimalityGap())
	}
	tr, ok := res.Truth["f"]
	if !ok || tr.Count != 3 || math.Abs(tr.TrueMean-2) > 1e-9 {
		t.Fatalf("truth=%+v", res.Truth)
	}
}

func TestPoolSetOccupancy(t *testing.T) {
	e := New(amc.AMC2, &fifoPolicy{}, Config{Seed: 1})
	ps := NewPoolSet(e, 2)
	if !ps.ClusterEmpty(0) || !ps.ClusterEmpty(1) {
		t.Fatal("new poolset not empty")
	}
	t1, t2 := task.New("a", 1), task.New("b", 1)
	ps.Push(0, 0, t1)
	ps.Push(3, 1, t2)
	if ps.ClusterEmpty(0) || ps.ClusterEmpty(1) {
		t.Fatal("occupancy not tracked on push")
	}
	if ps.TotalQueued() != 2 {
		t.Fatalf("TotalQueued=%d", ps.TotalQueued())
	}
	if got := ps.PopBottom(0, 0); got != t1 {
		t.Fatalf("PopBottom=%v", got)
	}
	if !ps.ClusterEmpty(0) {
		t.Fatal("occupancy not decremented")
	}
	thief := e.Cores()[5]
	if got := ps.StealRandom(thief, 1); got != t2 {
		t.Fatalf("StealRandom=%v", got)
	}
	if !ps.ClusterEmpty(1) {
		t.Fatal("occupancy not decremented after steal")
	}
	if ps.StealRandom(thief, 1) != nil {
		t.Fatal("steal from empty cluster should fail")
	}
	if ps.PopBottom(2, 0) != nil {
		t.Fatal("pop from empty pool should fail")
	}
}

func TestEnergyAccounting(t *testing.T) {
	run := func(works []float64) *Result {
		e := New(amc.AMC2, &fifoPolicy{}, Config{Seed: 1})
		res, err := e.Run(&listWorkload{tasks: leafTasks("f", works...)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r := run([]float64{1, 2, 3})
	if r.EnergyJoules <= 0 {
		t.Fatal("no energy accounted")
	}
	// More work costs more energy.
	r2 := run([]float64{1, 2, 3, 4, 5})
	if r2.EnergyJoules <= r.EnergyJoules {
		t.Fatalf("energy not monotone in work: %v vs %v", r.EnergyJoules, r2.EnergyJoules)
	}
}

func TestDVFSSpeedChange(t *testing.T) {
	// One core at rel 1; halfway through a 2-unit task it throttles to
	// half speed: completion at 1 + 1/0.5 = 3.
	a := amc.MustNew("1c", amc.CGroup{Freq: 2, N: 1})
	e := New(a, &fifoPolicy{}, Config{
		Seed: 1,
		DVFS: []SpeedEvent{{At: 1, Core: 0, Freq: 1}},
	})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Fatalf("makespan=%v want 3 (throttled halfway)", res.Makespan)
	}
	// Work conservation still holds at the piecewise rates.
	if math.Abs(res.TotalWork-2) > 1e-9 {
		t.Fatalf("TotalWork=%v", res.TotalWork)
	}
}

func TestDVFSSpeedUp(t *testing.T) {
	// Throttle in reverse: slow core doubles its speed mid-task.
	a := amc.MustNew("2g", amc.CGroup{Freq: 2, N: 1}, amc.CGroup{Freq: 1, N: 1})
	// Two tasks so the slow core (rel 0.5) takes one; it scales to rel 1
	// at t=1. Task work 2: slow core does 0.5 work by t=1, remaining 1.5
	// at rel 1 => finishes at 2.5 (vs 4 unthrottled).
	e := New(a, &fifoPolicy{}, Config{
		Seed: 1,
		DVFS: []SpeedEvent{{At: 1, Core: 1, Freq: 2}},
	})
	res, err := e.Run(&listWorkload{tasks: leafTasks("f", 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 2.5-1e-6 || res.Makespan > 2.51 {
		t.Fatalf("makespan=%v want ~2.5", res.Makespan)
	}
}

func TestDVFSValidation(t *testing.T) {
	a := amc.MustNew("1c", amc.CGroup{Freq: 1, N: 1})
	e := New(a, &fifoPolicy{}, Config{Seed: 1, DVFS: []SpeedEvent{{At: -1, Core: 0, Freq: 1}}})
	if _, err := e.Run(&listWorkload{tasks: leafTasks("f", 1)}); err == nil {
		t.Fatal("negative DVFS time accepted")
	}
	e2 := New(a, &fifoPolicy{}, Config{Seed: 1, DVFS: []SpeedEvent{{At: 1, Core: 9, Freq: 1}}})
	if _, err := e2.Run(&listWorkload{tasks: leafTasks("f", 1)}); err == nil {
		t.Fatal("out-of-range DVFS core accepted")
	}
}

func TestDVFSIdleCoreSwitch(t *testing.T) {
	// Speed change on an idle core applies cleanly and affects later tasks.
	a := amc.MustNew("1c", amc.CGroup{Freq: 2, N: 1})
	first := task.New("f", 1)
	var e *Engine
	// Chain a second task injected after the speed change.
	first.OnComplete = func(done *task.Task) {
		e.Inject(task.New("g", 1))
	}
	e = New(a, &fifoPolicy{}, Config{
		Seed: 1,
		DVFS: []SpeedEvent{{At: 1, Core: 0, Freq: 1}}, // exactly at first's end
	})
	res, err := e.Run(&listWorkload{tasks: []*task.Task{first}})
	if err != nil {
		t.Fatal(err)
	}
	// Task g runs entirely at rel 0.5: 1 + 2 = 3.
	if math.Abs(res.Makespan-3) > 1e-6 {
		t.Fatalf("makespan=%v want 3", res.Makespan)
	}
}
