package sim

import "container/heap"

// eventKind discriminates the engine's event types.
type eventKind int8

const (
	// evDispatch makes an idle core look for work.
	evDispatch eventKind = iota
	// evSegEnd fires when a core finishes its current task segment.
	evSegEnd
	// evHelper is the periodic helper-thread tick (cluster reorganization).
	evHelper
	// evSpeed applies a scheduled DVFS speed change to a core.
	evSpeed
	// evArrival injects a pre-registered open-loop task at its arrival
	// time (trace replay; the token indexes Engine.arrivals).
	evArrival
)

// event is one entry in the virtual-time event queue. Events at equal time
// are processed in insertion (seq) order, which keeps runs deterministic.
type event struct {
	at   float64
	seq  int64
	kind eventKind
	core int
	// token validates evSegEnd events: a preemption or re-dispatch bumps
	// the core's run token, turning stale segment-end events into no-ops.
	token int64
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)    { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any      { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h *eventHeap) push(ev event) { heap.Push(h, ev) }
func (h *eventHeap) pop() event    { return heap.Pop(h).(event) }
