package sim

import (
	"math"
	"testing"

	"wats/internal/amc"
	"wats/internal/rng"
	"wats/internal/task"
)

// TestFuzzRandomSpawnTrees drives the engine with randomly generated
// spawn trees under both spawn disciplines on random architectures and
// checks the global invariants on every run:
//
//   - every task completes exactly once;
//   - executed work equals injected work (conservation);
//   - makespan ≥ Lemma 1's lower bound;
//   - no virtual-time regressions or engine errors;
//   - parent-first measurement equals ground truth for every task.
func TestFuzzRandomSpawnTrees(t *testing.T) {
	r := rng.New(0xF00D)
	for trial := 0; trial < 60; trial++ {
		// Random architecture: 1-3 groups, 1-6 cores each.
		k := 1 + r.Intn(3)
		groups := make([]amc.CGroup, k)
		freq := 2.5
		for i := range groups {
			groups[i] = amc.CGroup{Freq: freq, N: 1 + r.Intn(6)}
			freq *= 0.3 + 0.5*r.Float64()
		}
		arch := amc.MustNew("fuzz", groups...)

		// Random forest of spawn trees.
		var totalWork float64
		var totalTasks int
		var roots []*task.Task
		var build func(depth int) *task.Task
		build = func(depth int) *task.Task {
			w := 0.001 + r.Float64()*0.05
			tk := task.New("c"+string(rune('a'+r.Intn(5))), w)
			totalWork += w
			totalTasks++
			if depth > 0 {
				nkids := r.Intn(3)
				for i := 0; i < nkids; i++ {
					child := build(depth - 1)
					tk.Spawns = append(tk.Spawns, task.Spawn{At: r.Float64() * w, Child: child})
				}
			}
			return tk
		}
		nRoots := 1 + r.Intn(6)
		for i := 0; i < nRoots; i++ {
			roots = append(roots, build(1+r.Intn(3)))
		}

		childFirst := r.Intn(2) == 0
		e := New(arch, &fifoPolicy{childFirst: childFirst}, Config{
			Seed: r.Uint64(), CollectTasks: true,
		})
		res, err := e.Run(&listWorkload{tasks: roots})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.TasksDone != totalTasks {
			t.Fatalf("trial %d: %d tasks done, want %d", trial, res.TasksDone, totalTasks)
		}
		if math.Abs(res.TotalWork-totalWork) > 1e-9 {
			t.Fatalf("trial %d: work %v != %v", trial, res.TotalWork, totalWork)
		}
		var executed float64
		for _, c := range res.Cores {
			executed += c.Busy * c.Rel
		}
		if math.Abs(executed-totalWork) > 1e-9 {
			t.Fatalf("trial %d: conservation violated (%v vs %v)", trial, executed, totalWork)
		}
		if res.Makespan < res.LowerBound-1e-9 {
			t.Fatalf("trial %d: makespan %v < bound %v", trial, res.Makespan, res.LowerBound)
		}
		// Tasks never left in a non-done state.
		for _, tk := range res.Completed {
			if tk.State != task.Done {
				t.Fatalf("trial %d: task %d in state %v", trial, tk.ID, tk.State)
			}
			if !childFirst && math.Abs(tk.Measured-tk.Work) > 1e-9 {
				t.Fatalf("trial %d: parent-first mismeasured task %d: %v vs %v",
					trial, tk.ID, tk.Measured, tk.Work)
			}
		}
	}
}

// TestFuzzMemFracTasks fuzzes the §IV-E timing model: tasks with random
// memory fractions still conserve work and respect per-task duration
// formulas.
func TestFuzzMemFracTasks(t *testing.T) {
	r := rng.New(0xBEEF)
	arch := amc.MustNew("mf", amc.CGroup{Freq: 2, N: 2}, amc.CGroup{Freq: 1, N: 2})
	for trial := 0; trial < 30; trial++ {
		var tasks []*task.Task
		var totalWork float64
		n := 4 + r.Intn(20)
		for i := 0; i < n; i++ {
			tk := task.New("m", 0.01+r.Float64()*0.05)
			tk.MemFrac = r.Float64()
			totalWork += tk.Work
			tasks = append(tasks, tk)
		}
		e := New(arch, &fifoPolicy{}, Config{Seed: r.Uint64(), CollectTasks: true})
		res, err := e.Run(&listWorkload{tasks: tasks})
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksDone != n {
			t.Fatalf("tasks done %d/%d", res.TasksDone, n)
		}
		for _, tk := range res.Completed {
			rel := arch.Speed(tk.LastCore) / arch.FastestFreq()
			want := tk.Work*(1-tk.MemFrac)/rel + tk.Work*tk.MemFrac
			got := tk.EndT - tk.StartT
			// StartT precedes the steal-cost delay, so allow it on top.
			if got < want-1e-9 || got > want+1e-4 {
				t.Fatalf("task on core %d (rel %v, mf %v): duration %v want %v",
					tk.LastCore, rel, tk.MemFrac, got, want)
			}
		}
	}
}
