package sim

import (
	"fmt"
	"sort"
	"strings"

	"wats/internal/counters"
	"wats/internal/task"
)

// CoreStats is the per-core slice of a run's statistics.
type CoreStats struct {
	ID           int
	Group        int
	Rel          float64
	Busy         float64
	Overhead     float64
	Steals       int
	LocalPops    int
	Snatches     int
	SnatchedFrom int
	TasksRun     int
}

// ClassAccuracy compares the scheduler-visible measured statistics of a
// task class with its ground truth.
type ClassAccuracy struct {
	Class    string
	Count    int
	TrueMean float64
}

// Result summarizes one simulation run.
type Result struct {
	Policy   string
	Workload string
	ArchName string

	// Makespan is the virtual time at which the last task completed.
	Makespan float64
	// TotalWork is the ground-truth work completed, in fastest-core units.
	TotalWork float64
	// LowerBound is Lemma 1's TL for the completed work on this
	// architecture: TotalWork / sum(Rel_i) — no schedule can finish
	// faster even with perfect knowledge.
	LowerBound float64
	// TasksDone is the number of completed tasks.
	TasksDone int
	// Steals, Snatches aggregate the per-core counters.
	Steals, Snatches int
	// HelperTicks counts helper-thread activations.
	HelperTicks int
	// EnergyJoules estimates the run's energy with the default DVFS model
	// of package counters: a core burns dynamic power (∝ f³) while busy
	// and static power for the whole makespan. Schedulers that finish
	// sooner save the machine-wide static energy of the difference.
	EnergyJoules float64
	// QuiescentTimes are the virtual times at which the system fully
	// drained — the batch barriers of batch workloads. Successive
	// differences are per-batch makespans (see BatchMakespans), which
	// expose the history's cold-start convergence.
	QuiescentTimes []float64
	// Cores holds the per-core breakdown.
	Cores []CoreStats
	// Truth holds per-class ground-truth means (for accuracy tests).
	Truth map[string]ClassAccuracy
	// Completed holds every task if Config.CollectTasks was set.
	Completed []*task.Task
}

// BatchMakespans returns the durations between consecutive quiescence
// points (per-batch makespans for barrier-style workloads).
func (r *Result) BatchMakespans() []float64 {
	out := make([]float64, 0, len(r.QuiescentTimes))
	prev := 0.0
	for _, t := range r.QuiescentTimes {
		out = append(out, t-prev)
		prev = t
	}
	return out
}

// Utilization returns the fraction of aggregate capacity spent on task
// work: TotalWork / (Makespan * sum(Rel)).
func (r *Result) Utilization() float64 {
	var cap float64
	for _, c := range r.Cores {
		cap += c.Rel
	}
	if r.Makespan == 0 || cap == 0 {
		return 0
	}
	return r.TotalWork / (r.Makespan * cap)
}

// OptimalityGap returns Makespan/LowerBound - 1: zero means the run
// achieved Lemma 1's bound.
func (r *Result) OptimalityGap() float64 {
	if r.LowerBound == 0 {
		return 0
	}
	return r.Makespan/r.LowerBound - 1
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s on %s: makespan=%.4gs (TL=%.4gs, gap=%.1f%%, util=%.1f%%, tasks=%d, steals=%d, snatches=%d)",
		r.Policy, r.Workload, r.ArchName, r.Makespan, r.LowerBound,
		100*r.OptimalityGap(), 100*r.Utilization(), r.TasksDone, r.Steals, r.Snatches)
}

// Detail renders a multi-line per-core report.
func (r *Result) Detail() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.String())
	for _, c := range r.Cores {
		util := 0.0
		if r.Makespan > 0 {
			util = c.Busy / r.Makespan
		}
		fmt.Fprintf(&b, "  core %2d (grp %d, rel %.2f): busy %.1f%% ovh %.3gs pops %d steals %d snatch %d/%d tasks %d\n",
			c.ID, c.Group, c.Rel, 100*util, c.Overhead, c.LocalPops, c.Steals, c.Snatches, c.SnatchedFrom, c.TasksRun)
	}
	if len(r.Truth) > 0 {
		classes := make([]string, 0, len(r.Truth))
		for f := range r.Truth {
			classes = append(classes, f)
		}
		sort.Strings(classes)
		for _, f := range classes {
			t := r.Truth[f]
			fmt.Fprintf(&b, "  class %-12s n=%d trueMean=%.4g\n", f, t.Count, t.TrueMean)
		}
	}
	return b.String()
}

func (e *Engine) result() *Result {
	r := &Result{
		Policy:      e.Policy.Name(),
		ArchName:    e.Arch.Name,
		Makespan:    e.lastDone,
		TotalWork:   e.totalWork,
		TasksDone:   e.tasksDone,
		HelperTicks: e.helperTicks,
		Truth:       map[string]ClassAccuracy{},
		Completed:   e.completed,
	}
	if e.workload != nil {
		r.Workload = e.workload.Name()
	}
	r.QuiescentTimes = append(r.QuiescentTimes, e.quiescents...)
	var cap float64
	for _, c := range e.cores {
		cap += c.Rel
		r.Cores = append(r.Cores, CoreStats{
			ID: c.ID, Group: c.Group, Rel: c.Rel,
			Busy: c.Busy, Overhead: c.Overhead,
			Steals: c.Steals, LocalPops: c.LocalPops,
			Snatches: c.Snatches, SnatchedFrom: c.SnatchedFrom,
			TasksRun: c.TasksRun,
		})
		r.Steals += c.Steals
		r.Snatches += c.Snatches
	}
	if cap > 0 {
		r.LowerBound = e.totalWork / cap
	}
	m := counters.DefaultEnergyModel
	for _, c := range e.cores {
		f := e.Arch.Speed(c.ID)
		dyn := m.Power(f) - m.StaticPower
		r.EnergyJoules += c.Busy*dyn + r.Makespan*m.StaticPower
	}
	for f, t := range e.classTruth {
		r.Truth[f] = ClassAccuracy{Class: f, Count: t.n, TrueMean: t.sum / float64(t.n)}
	}
	return r
}
