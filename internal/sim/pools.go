package sim

import (
	"wats/internal/deque"
	"wats/internal/task"
)

// PoolSet is the distributed task-pool fabric shared by all policies: one
// deque per (core, cluster) pair, as in Fig. 5 of the paper. Policies with
// a single logical pool per core (Cilk, PFT, RTS) use nClusters=1.
//
// All mutation goes through PoolSet so that the engine can maintain the
// child-first inline-measurement stacks (NoteDequeued) and policies can
// cheaply find steal victims via per-cluster occupancy counts.
type PoolSet struct {
	e        *Engine
	nCores   int
	nCluster int
	pools    []*deque.Deque[*task.Task] // index: core*nCluster + cluster
	// occupancy[cluster] is the number of cores whose pool for that
	// cluster is non-empty, for O(1) "are there any Cj tasks?" checks.
	occupancy []int
}

// NewPoolSet builds the (cores × clusters) deque matrix.
func NewPoolSet(e *Engine, nClusters int) *PoolSet {
	n := len(e.Cores())
	p := &PoolSet{e: e, nCores: n, nCluster: nClusters, occupancy: make([]int, nClusters)}
	p.pools = make([]*deque.Deque[*task.Task], n*nClusters)
	for i := range p.pools {
		p.pools[i] = deque.New[*task.Task]()
	}
	return p
}

func (p *PoolSet) at(core, cluster int) *deque.Deque[*task.Task] {
	return p.pools[core*p.nCluster+cluster]
}

// Len returns the number of tasks in core's pool for cluster.
func (p *PoolSet) Len(core, cluster int) int { return p.at(core, cluster).Len() }

// ClusterEmpty reports whether every core's pool for the cluster is empty.
func (p *PoolSet) ClusterEmpty(cluster int) bool { return p.occupancy[cluster] == 0 }

// Push appends t at the bottom of core's pool for cluster.
func (p *PoolSet) Push(core, cluster int, t *task.Task) {
	d := p.at(core, cluster)
	if d.Empty() {
		p.occupancy[cluster]++
	}
	d.PushBottom(t)
}

// PopBottom removes the newest task from core's own pool for cluster
// (owner end, LIFO). Returns nil if empty.
func (p *PoolSet) PopBottom(core, cluster int) *task.Task {
	d := p.at(core, cluster)
	t, ok := d.PopBottom()
	if !ok {
		return nil
	}
	if d.Empty() {
		p.occupancy[cluster]--
	}
	p.e.NoteDequeued(p.e.Cores()[core], t)
	return t
}

// StealTop removes the oldest task from victim's pool for cluster (thief
// end, FIFO). Returns nil if empty.
func (p *PoolSet) StealTop(victim, cluster int) *task.Task {
	d := p.at(victim, cluster)
	t, ok := d.PopTop()
	if !ok {
		return nil
	}
	if d.Empty() {
		p.occupancy[cluster]--
	}
	p.e.NoteDequeued(p.e.Cores()[victim], t)
	return t
}

// StealRandom steals from a uniformly random core (other than thief) whose
// pool for cluster is non-empty, per the traditional task-stealing policy.
// Returns nil if every other core's pool for the cluster is empty.
func (p *PoolSet) StealRandom(thief *Core, cluster int) *task.Task {
	if p.occupancy[cluster] == 0 {
		return nil
	}
	// Collect non-empty victims; the serial event loop makes this exact.
	var victims []int
	for c := 0; c < p.nCores; c++ {
		if c != thief.ID && !p.at(c, cluster).Empty() {
			victims = append(victims, c)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	v := victims[thief.Rng.Intn(len(victims))]
	t := p.StealTop(v, cluster)
	if t != nil && p.e.Cfg.Tracer != nil {
		p.e.Cfg.Tracer.Steal(thief.ID, v, cluster, t.ID, p.e.Now())
	}
	return t
}

// TotalQueued returns the number of queued tasks across all pools.
func (p *PoolSet) TotalQueued() int {
	n := 0
	for _, d := range p.pools {
		n += d.Len()
	}
	return n
}
