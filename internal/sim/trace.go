package sim

// Tracer receives fine-grained execution events from the engine. Package
// trace provides a Recorder implementation; custom tracers can compute
// online statistics. All callbacks run on the single-threaded event loop.
type Tracer interface {
	// Segment reports an executed stretch of a task on a core over
	// [start, end] in virtual time.
	Segment(core, taskID int, class string, start, end float64)
	// Complete reports a task completion.
	Complete(core, taskID int, class string, at float64)
	// Steal reports a successful steal of a queued task.
	Steal(thief, victim, cluster, taskID int, at float64)
	// Snatch reports a preemption of victim's running task by thief.
	Snatch(thief, victim, taskID int, at float64)
}
