// Package stats provides the small set of descriptive statistics used by
// the benchmark harness: means, standard deviations, confidence
// half-widths and quantiles over float64 samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean), or 0 if the mean
// is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// Min returns the minimum of xs (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Sample is a running-summary accumulator.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return Stddev(s.xs) }

// Values returns the underlying observations (not a copy).
func (s *Sample) Values() []float64 { return s.xs }

// String formats the sample as "mean ± stddev (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.Stddev(), s.N())
}
