package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean=%v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance=%v", v)
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev=%v", s)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty stats nonzero")
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-sample variance nonzero")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{2, 2, 2}) != 0 {
		t.Fatal("constant CV nonzero")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean CV should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Q(%v)=%v want %v", q, got, want)
		}
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("interpolated median %v", got)
	}
	// Input must not be mutated (Quantile sorts a copy).
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileWithinRange(t *testing.T) {
	check := func(xs []float64, q float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q = math.Abs(q)
		q -= math.Floor(q)
		got := Quantile(xs, q)
		return got >= Min(xs)-1e-9 && got <= Max(xs)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3} {
		s.Add(x)
	}
	if s.N() != 3 || s.Mean() != 2 {
		t.Fatalf("sample: %v", s.String())
	}
	if len(s.Values()) != 3 {
		t.Fatal("values")
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
