package task

import (
	"fmt"
	"sync"
	"testing"
)

// benchClasses is a realistic class mix (the Table III benchmarks spawn a
// handful of distinct classes, not thousands).
var benchClasses = [...]string{
	"ga_evolve", "ga_eval", "lzw_chunk", "md5_block",
	"bwt_rotate", "dmc_node", "dedup_stage", "ferret_rank",
}

// BenchmarkObserveParallel measures the per-completion statistics path
// (Algorithm 2) under worker parallelism: w goroutines concurrently fold
// completed-task observations, exactly as w live-runtime workers do. The
// before/after numbers for the sharded-registry refactor are recorded in
// DESIGN.md §7.
func BenchmarkObserveParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			reg := NewSharded(workers)
			per := b.N/workers + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rec := reg.Recorder(w)
					for i := 0; i < per; i++ {
						rec.Observe(benchClasses[(i+w)%len(benchClasses)], float64(i%100)*0.001, 0)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
