package task

import (
	"fmt"
	"sort"
	"sync"
)

// Class is the task-class record TC(f, n, w) of the paper: f is the
// function name, n the number of completed tasks observed, and w their
// average Eq.2-normalized workload. AvgCMPI extends the record with the
// class's average cache-misses-per-instruction for the §IV-E
// memory-boundedness classification.
type Class struct {
	// Name is the function name f.
	Name string
	// Count is n, the number of completed tasks folded in so far.
	Count int
	// AvgWork is w, the running average normalized workload.
	AvgWork float64
	// AvgCMPI is the running average CMPI reported by the performance
	// counters (0 when counters are not collected).
	AvgCMPI float64
}

// TotalWork returns n*w, the aggregate workload of the class, which
// Algorithm 1 uses as the class's weight when partitioning classes into
// task clusters.
func (c Class) TotalWork() float64 { return float64(c.Count) * c.AvgWork }

// Registry is the concurrency-safe collection of task classes maintained
// by the helper thread (Algorithm 2). The simulator uses it
// single-threaded; the live runtime updates it from many workers.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]*Class
	// epoch increments on every update; the allocator uses it to skip
	// reorganizations when nothing changed since the last one.
	epoch uint64
	// ewma, when nonzero, switches the workload average from the paper's
	// cumulative mean to an exponential moving average with this weight
	// for the newest observation — an extension that adapts faster to
	// phase changes (§III-A discusses timely updates; a cumulative mean
	// over a long history adapts at rate n_new/n_total).
	ewma float64
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// SetEWMA switches the registry to exponential moving averages with the
// given weight in (0,1] for the newest observation; 0 restores the
// paper's cumulative mean. Call before observations for clean semantics.
func (r *Registry) SetEWMA(alpha float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ewma = alpha
}

// Observe folds one completed task into its class, implementing
// Algorithm 2 of the paper:
//
//	TC(f, n, w)  =>  TC(f, n+1, (n*w + wγ)/(n+1))
//
// creating the class on first observation. workload must already be
// normalized per Eq. 2. It reports whether a new class was created.
func (r *Registry) Observe(function string, workload float64) bool {
	return r.ObserveFull(function, workload, 0)
}

// ObserveFull is Observe plus the task's CMPI counter readout, for the
// §IV-E memory-aware extension.
func (r *Registry) ObserveFull(function string, workload, cmpi float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	c, ok := r.classes[function]
	if !ok {
		r.classes[function] = &Class{Name: function, Count: 1, AvgWork: workload, AvgCMPI: cmpi}
		return true
	}
	if a := r.ewma; a > 0 {
		c.AvgWork = (1-a)*c.AvgWork + a*workload
		c.AvgCMPI = (1-a)*c.AvgCMPI + a*cmpi
	} else {
		n := float64(c.Count)
		c.AvgWork = (n*c.AvgWork + workload) / (n + 1)
		c.AvgCMPI = (n*c.AvgCMPI + cmpi) / (n + 1)
	}
	c.Count++
	return false
}

// Lookup returns the class record for a function name and whether it
// exists. The returned struct is a copy.
func (r *Registry) Lookup(function string) (Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[function]
	if !ok {
		return Class{}, false
	}
	return *c, true
}

// Len returns the number of known classes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes)
}

// Epoch returns a counter that increments on every Observe, letting
// callers detect staleness cheaply.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Snapshot returns all classes sorted in descending order of average
// workload (the order Algorithm 1 consumes), ties broken by name for
// determinism.
func (r *Registry) Snapshot() []Class {
	r.mu.RLock()
	out := make([]Class, 0, len(r.classes))
	for _, c := range r.classes {
		out = append(out, *c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgWork != out[j].AvgWork {
			return out[i].AvgWork > out[j].AvgWork
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset discards all collected statistics. The phase-change tests use it
// to model an application whose workload pattern shifts abruptly.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes = make(map[string]*Class)
	r.epoch++
}

// String renders the registry contents for debugging.
func (r *Registry) String() string {
	s := r.Snapshot()
	out := "classes{"
	for i, c := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s: n=%d w=%.3g", c.Name, c.Count, c.AvgWork)
	}
	return out + "}"
}
