package task

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Class is the task-class record TC(f, n, w) of the paper: f is the
// function name, n the number of completed tasks observed, and w their
// average Eq.2-normalized workload. AvgCMPI extends the record with the
// class's average cache-misses-per-instruction for the §IV-E
// memory-boundedness classification.
type Class struct {
	// Name is the function name f.
	Name string
	// Count is n, the number of completed tasks folded in so far.
	Count int
	// AvgWork is w, the running average normalized workload.
	AvgWork float64
	// AvgCMPI is the running average CMPI reported by the performance
	// counters (0 when counters are not collected).
	AvgCMPI float64
}

// TotalWork returns n*w, the aggregate workload of the class, which
// Algorithm 1 uses as the class's weight when partitioning classes into
// task clusters.
func (c Class) TotalWork() float64 { return float64(c.Count) * c.AvgWork }

// Registry is the collection of task classes of Algorithm 2, split along
// the paper's hot/cold boundary (§III-C):
//
//   - the hot path records completed tasks through per-worker shard
//     Recorders — plain owner-only writes, no locks, no shared cache
//     lines (see shard.go);
//   - the cold path (the helper thread's reorganization, plus any
//     Lookup/Snapshot reader) merges the shard deltas into the canonical
//     class table under Registry.mu.
//
// Merging only delays when statistics become visible — never what they
// converge to: with the cumulative mean, folding a batch (Δn, Δsum) gives
// exactly the same class average as folding its observations one at a
// time. Direct Observe/ObserveFull calls (the simulator's single-threaded
// loop, tests) still update the canonical table in place under the lock.
type Registry struct {
	mu      sync.Mutex
	classes map[string]*Class
	// ewma, when nonzero, switches the workload average from the paper's
	// cumulative mean to an exponential moving average with this weight
	// for the newest observation — an extension that adapts faster to
	// phase changes (§III-A discusses timely updates; a cumulative mean
	// over a long history adapts at rate n_new/n_total).
	ewma float64

	// epoch increments on every direct observation and structural change;
	// Epoch() adds the shard totals so the allocator can detect staleness
	// without locking.
	epoch atomic.Uint64

	// set holds the per-worker lock-free recorders. It is published
	// RCU-style (copy-on-write under mu, atomic pointer swap) so the
	// lock-free readers — Epoch, the record path handing out recorders —
	// never block while an elastic runtime grows the shard set for a
	// joining worker. Shards are only ever added, never removed: a retiring
	// worker's shard stays behind with its monotone totals, so its history
	// folds into the canonical table exactly like a live worker's.
	// consumed[i] tracks how much of shard i has been folded into classes
	// (guarded by mu; grown lazily to match the set). consumedTotal mirrors
	// the folded observation count so the pending check stays a handful of
	// atomic loads.
	set           atomic.Pointer[shardSet]
	consumed      []map[string]cursor
	consumedTotal atomic.Int64
}

// shardSet is the immutable published view of the shard recorders; Grow
// copies and republishes it.
type shardSet struct {
	shards []*shard
	recs   []*Recorder
}

// NewRegistry returns an empty class registry with a single shard
// (sufficient for single-threaded use; the engines size their registries
// with NewSharded).
func NewRegistry() *Registry { return NewSharded(1) }

// NewSharded returns an empty registry with n per-worker shard recorders
// (min 1). Recorder(w) hands worker w its owner-only sink.
func NewSharded(n int) *Registry {
	if n < 1 {
		n = 1
	}
	r := &Registry{classes: make(map[string]*Class)}
	set := &shardSet{
		shards: make([]*shard, n),
		recs:   make([]*Recorder, n),
	}
	for i := range set.shards {
		set.shards[i] = &shard{}
		set.recs[i] = &Recorder{sh: set.shards[i]}
	}
	r.set.Store(set)
	r.consumed = make([]map[string]cursor, n)
	for i := range r.consumed {
		r.consumed[i] = make(map[string]cursor)
	}
	return r
}

// Recorder returns shard w's owner-only sink, growing the shard set when
// w is beyond it — the entry point an elastic runtime uses to hand a
// joining worker a fresh history shard. Exactly one goroutine may use a
// given recorder; the returned pointer is stable across calls (slot ids
// reused for successive workers share one recorder, which is safe because
// the runtime retires the old owner before the new one starts).
func (r *Registry) Recorder(w int) *Recorder {
	if w < 0 {
		w = 0
	}
	if set := r.set.Load(); w < len(set.recs) {
		return set.recs[w]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.set.Load()
	if w < len(set.recs) {
		return set.recs[w]
	}
	next := &shardSet{
		shards: append(append([]*shard(nil), set.shards...), make([]*shard, w+1-len(set.shards))...),
		recs:   append(append([]*Recorder(nil), set.recs...), make([]*Recorder, w+1-len(set.recs))...),
	}
	for i := len(set.shards); i <= w; i++ {
		next.shards[i] = &shard{}
		next.recs[i] = &Recorder{sh: next.shards[i]}
	}
	r.set.Store(next)
	return next.recs[w]
}

// Shards returns the number of shard recorders.
func (r *Registry) Shards() int { return len(r.set.Load().shards) }

// growConsumedLocked extends the cursor table to cover every published
// shard. Called with mu held before any cursor access.
func (r *Registry) growConsumedLocked(n int) {
	for len(r.consumed) < n {
		r.consumed = append(r.consumed, make(map[string]cursor))
	}
}

// SetEWMA switches the registry to exponential moving averages with the
// given weight in (0,1] for the newest observation; 0 restores the
// paper's cumulative mean.
//
// Ordering contract under sharding: the mode applies at merge time, not
// at record time. Observations already recorded to shard recorders but
// not yet merged are folded with whatever mode is in effect when the
// merge happens — SetEWMA therefore affects subsequent merges only.
// Call it before observations begin for clean semantics. Note also that
// the sharded EWMA is batch-granular: one merge folds a shard's pending
// observations as a single batch with their mean (see foldBatch), which
// equals the per-observation EWMA when the batch is one observation.
func (r *Registry) SetEWMA(alpha float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ewma = alpha
}

// Observe folds one completed task into its class, implementing
// Algorithm 2 of the paper:
//
//	TC(f, n, w)  =>  TC(f, n+1, (n*w + wγ)/(n+1))
//
// creating the class on first observation. workload must already be
// normalized per Eq. 2. It reports whether a new class was created.
//
// Observe updates the canonical table directly under the registry lock;
// concurrent hot paths should use a per-worker Recorder instead.
func (r *Registry) Observe(function string, workload float64) bool {
	return r.ObserveFull(function, workload, 0)
}

// ObserveFull is Observe plus the task's CMPI counter readout, for the
// §IV-E memory-aware extension.
func (r *Registry) ObserveFull(function string, workload, cmpi float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch.Add(1)
	c, ok := r.classes[function]
	if !ok {
		r.classes[function] = &Class{Name: function, Count: 1, AvgWork: workload, AvgCMPI: cmpi}
		return true
	}
	if a := r.ewma; a > 0 {
		c.AvgWork = (1-a)*c.AvgWork + a*workload
		c.AvgCMPI = (1-a)*c.AvgCMPI + a*cmpi
	} else {
		n := float64(c.Count)
		c.AvgWork = (n*c.AvgWork + workload) / (n + 1)
		c.AvgCMPI = (n*c.AvgCMPI + cmpi) / (n + 1)
	}
	c.Count++
	return false
}

// pendingLocked reports whether any shard holds observations not yet
// folded into the canonical table. Called with mu held (or from Epoch,
// where staleness is harmless).
func (r *Registry) pendingLocked() bool {
	var t int64
	for _, sh := range r.set.Load().shards {
		t += sh.count()
	}
	return t > r.consumedTotal.Load()
}

// foldLocked merges every shard's unconsumed deltas into the canonical
// table — the merge step the helper thread performs at reorganization
// time. Called with mu held.
func (r *Registry) foldLocked() {
	shards := r.set.Load().shards
	r.growConsumedLocked(len(shards))
	for i, sh := range shards {
		mp := sh.slots.Load()
		if mp == nil {
			continue
		}
		for name, sl := range *mp {
			n, sw, sc := sl.read()
			cur := r.consumed[i][name]
			dn := n - cur.n
			if dn == 0 {
				continue
			}
			dw, dc := sw-cur.sumWork, sc-cur.sumCMPI
			r.consumed[i][name] = cursor{n: n, sumWork: sw, sumCMPI: sc}
			r.consumedTotal.Add(dn)
			r.foldBatch(name, dn, dw, dc)
		}
	}
}

// foldBatch folds a batch of dn observations with sums (dw, dc) into the
// class. With the cumulative mean this is exact: (n*w + Δsum)/(n+Δn)
// equals folding the observations one at a time (up to float rounding).
// With EWMA the batch is applied at its mean — new = (1-α)^Δn·old +
// (1-(1-α)^Δn)·(Δsum/Δn) — which matches the per-observation EWMA when
// Δn=1 and weighs the batch as a whole otherwise (batch-granular EWMA;
// see SetEWMA).
func (r *Registry) foldBatch(name string, dn int64, dw, dc float64) {
	fdn := float64(dn)
	c, ok := r.classes[name]
	if !ok {
		r.classes[name] = &Class{Name: name, Count: int(dn), AvgWork: dw / fdn, AvgCMPI: dc / fdn}
		return
	}
	if a := r.ewma; a > 0 {
		keep := math.Pow(1-a, fdn)
		c.AvgWork = keep*c.AvgWork + (1-keep)*(dw/fdn)
		c.AvgCMPI = keep*c.AvgCMPI + (1-keep)*(dc/fdn)
	} else {
		n := float64(c.Count)
		c.AvgWork = (n*c.AvgWork + dw) / (n + fdn)
		c.AvgCMPI = (n*c.AvgCMPI + dc) / (n + fdn)
	}
	c.Count += int(dn)
}

// Lookup returns the class record for a function name and whether it
// exists, merging any pending shard observations first. The returned
// struct is a copy.
func (r *Registry) Lookup(function string) (Class, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pendingLocked() {
		r.foldLocked()
	}
	c, ok := r.classes[function]
	if !ok {
		return Class{}, false
	}
	return *c, true
}

// Len returns the number of known classes (pending shard observations
// merged first).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pendingLocked() {
		r.foldLocked()
	}
	return len(r.classes)
}

// Epoch returns a counter that advances on every observation — direct or
// shard-recorded — letting callers detect staleness cheaply. It is
// lock-free: atomic loads over the shards' published slot counts (one per
// shard × class), never the registry mutex.
func (r *Registry) Epoch() uint64 {
	e := r.epoch.Load()
	for _, sh := range r.set.Load().shards {
		e += uint64(sh.count())
	}
	return e
}

// Snapshot returns all classes sorted in descending order of average
// workload (the order Algorithm 1 consumes), ties broken by name for
// determinism. Pending shard observations are merged first — this is the
// merge-on-repartition entry point of the helper thread.
func (r *Registry) Snapshot() []Class {
	r.mu.Lock()
	if r.pendingLocked() {
		r.foldLocked()
	}
	out := make([]Class, 0, len(r.classes))
	for _, c := range r.classes {
		out = append(out, *c)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgWork != out[j].AvgWork {
			return out[i].AvgWork > out[j].AvgWork
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset discards all collected statistics, including shard observations
// not yet merged. The phase-change tests use it to model an application
// whose workload pattern shifts abruptly. Observations racing with Reset
// may land on either side of it.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes = make(map[string]*Class)
	shards := r.set.Load().shards
	r.growConsumedLocked(len(shards))
	for i, sh := range shards {
		mp := sh.slots.Load()
		if mp == nil {
			continue
		}
		for name, sl := range *mp {
			n, sw, sc := sl.read()
			if d := n - r.consumed[i][name].n; d > 0 {
				r.consumedTotal.Add(d)
			}
			r.consumed[i][name] = cursor{n: n, sumWork: sw, sumCMPI: sc}
		}
	}
	r.epoch.Add(1)
}

// String renders the registry contents for debugging.
func (r *Registry) String() string {
	s := r.Snapshot()
	out := "classes{"
	for i, c := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s: n=%d w=%.3g", c.Name, c.Count, c.AvgWork)
	}
	return out + "}"
}
