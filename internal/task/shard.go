package task

import (
	"math"
	"sync/atomic"
)

// This file implements the lock-free half of the class statistics: each
// worker owns one shard and records completed tasks into it without any
// locks; the registry folds shard deltas into the canonical class table at
// merge time (reorganization or a cold-path read). It is the paper's
// helper-thread division of labor (§III-C) taken to its logical end:
// workers only ever append locally, the helper does all the aggregation.
//
// Memory ordering. A slot is single-writer: the owning worker accumulates
// into plain shadow fields and publishes them with three atomic stores,
// sums first, count last. The merge path loads count first, then the
// sums. Under the Go memory model's sequentially-consistent atomics, a
// reader that observes count = n therefore observes sums covering at
// least those n observations — the sums may additionally include an
// in-flight observation the count does not yet cover. The registry's
// consumption cursors absorb that slack: all counters are monotone, every
// recorded observation is eventually covered by a published count, so the
// merged table is exact once recording quiesces, and transiently off by
// at most one in-flight observation per slot while it runs. No CAS, no
// atomic read-modify-write, and no retry loop appears anywhere on the
// record path.
type slot struct {
	// Owner-side shadow accumulators: plain fields, touched only by the
	// shard owner.
	locN int64
	locW float64
	locC float64
	// Published copies. Monotone totals since shard creation; the merge
	// path tracks how much it has consumed, so the writer never needs to
	// be paused or reset.
	count   atomic.Int64
	sumWork atomic.Uint64
	sumCMPI atomic.Uint64
}

// record folds one observation. Owner-only: exactly one goroutine may call
// it for a given slot. Publication order is sums before count (see the
// file comment); the CMPI sum is only published while it is live — a class
// that never reports counters skips that store entirely.
func (s *slot) record(workload, cmpi float64) {
	s.locN++
	s.locW += workload
	s.sumWork.Store(math.Float64bits(s.locW))
	if cmpi != 0 || s.locC != 0 {
		s.locC += cmpi
		s.sumCMPI.Store(math.Float64bits(s.locC))
	}
	s.count.Store(s.locN)
}

// read returns a (count, sumWork, sumCMPI) merge snapshot: count first,
// then sums, so the sums cover at least count observations (possibly one
// more that is still in flight — see the file comment). Merge-path only.
func (s *slot) read() (n int64, sumWork, sumCMPI float64) {
	n = s.count.Load()
	sumWork = math.Float64frombits(s.sumWork.Load())
	sumCMPI = math.Float64frombits(s.sumCMPI.Load())
	return
}

// slotMap is the per-shard class index. Published maps are immutable: the
// owner copies on class creation and swaps the pointer, so the merge path
// can range over a loaded map without synchronization (RCU-style).
type slotMap = map[string]*slot

// shard is one worker's private statistics area. It has no aggregate
// counter of its own: the registry's epoch and pending-work checks sum the
// published slot counts instead (cold path, and the class population is
// small), keeping the record path at its minimum of two stores.
type shard struct {
	slots atomic.Pointer[slotMap]
	_     [56]byte // keep neighboring shards' hot words off one cache line
}

// count sums the shard's published per-slot observation counts.
func (sh *shard) count() int64 {
	m := sh.slots.Load()
	if m == nil {
		return 0
	}
	var t int64
	for _, sl := range *m {
		t += sl.count.Load()
	}
	return t
}

// addSlot publishes a new class slot (copy-on-write; owner-only).
func (sh *shard) addSlot(class string) *slot {
	old := sh.slots.Load()
	next := make(slotMap, 1+lenOf(old))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	sl := &slot{}
	next[class] = sl
	sh.slots.Store(&next)
	return sl
}

func lenOf(m *slotMap) int {
	if m == nil {
		return 0
	}
	return len(*m)
}

// Recorder is one worker's owner-only statistics sink: the lock-free
// record step of Algorithm 2. Exactly one goroutine may call Observe on a
// given Recorder; distinct recorders are fully independent. Observations
// become visible to Lookup/Snapshot/Epoch when the registry next merges
// (helper-thread reorganization or any cold-path read) — merging only
// delays when statistics appear, never what they converge to.
type Recorder struct {
	sh *shard
}

// Observe records one completed task of the given class: Eq.2-normalized
// workload plus the CMPI counter readout (0 when not collected).
func (rec *Recorder) Observe(class string, workload, cmpi float64) {
	sh := rec.sh
	var sl *slot
	if m := sh.slots.Load(); m != nil {
		sl = (*m)[class]
	}
	if sl == nil {
		sl = sh.addSlot(class)
	}
	sl.record(workload, cmpi)
}

// cursor remembers how much of a shard slot the registry has folded into
// the canonical table (guarded by Registry.mu).
type cursor struct {
	n       int64
	sumWork float64
	sumCMPI float64
}
