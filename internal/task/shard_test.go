package task

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// obsSeq builds a deterministic observation sequence over a handful of
// classes (seeded LCG so runs are reproducible without the rng package).
type obs struct {
	class    string
	workload float64
	cmpi     float64
}

func obsSeq(n int) []obs {
	out := make([]obs, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		cls := benchClasses[state%uint64(len(benchClasses))]
		w := float64((state>>32)%1000) * 1e-4
		c := float64((state>>48)%100) * 1e-3
		out[i] = obs{class: cls, workload: w, cmpi: c}
	}
	return out
}

// TestShardedMergeMatchesDirect asserts the determinism contract of the
// sharded registry: folding the same observation sequence through 16
// per-worker recorders (round-robin) and merging yields the same TC(f, n, w)
// as the single-lock direct path — counts exactly, averages up to float
// rounding (the cumulative mean is order-independent mathematically; only
// summation order differs).
func TestShardedMergeMatchesDirect(t *testing.T) {
	seq := obsSeq(10_000)

	direct := NewRegistry()
	for _, o := range seq {
		direct.ObserveFull(o.class, o.workload, o.cmpi)
	}

	const shards = 16
	sharded := NewSharded(shards)
	for i, o := range seq {
		sharded.Recorder(i%shards).Observe(o.class, o.workload, o.cmpi)
	}

	want := direct.Snapshot()
	got := sharded.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("class count: got %d, want %d", len(got), len(want))
	}
	for _, w := range want {
		g, ok := sharded.Lookup(w.Name)
		if !ok {
			t.Fatalf("class %q missing from sharded registry", w.Name)
		}
		if g.Count != w.Count {
			t.Errorf("%s: Count got %d, want %d", w.Name, g.Count, w.Count)
		}
		if !closeRel(g.AvgWork, w.AvgWork, 1e-9) {
			t.Errorf("%s: AvgWork got %v, want %v", w.Name, g.AvgWork, w.AvgWork)
		}
		if !closeRel(g.AvgCMPI, w.AvgCMPI, 1e-9) {
			t.Errorf("%s: AvgCMPI got %v, want %v", w.Name, g.AvgCMPI, w.AvgCMPI)
		}
	}
	if de, se := direct.Epoch(), sharded.Epoch(); de != se {
		t.Errorf("Epoch: direct %d, sharded %d", de, se)
	}
}

func closeRel(a, b, eps float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// TestShardedEWMAAppliesAtMergeTime pins the SetEWMA ordering contract
// under sharding: the averaging mode applies when shard deltas are merged,
// not when they are recorded. Observations recorded before SetEWMA but
// merged after it are folded with the new weight, as one batch at its mean.
func TestShardedEWMAAppliesAtMergeTime(t *testing.T) {
	reg := NewSharded(2)
	rec := reg.Recorder(0)

	rec.Observe("f", 1.0, 0)
	if c, _ := reg.Lookup("f"); c.AvgWork != 1.0 || c.Count != 1 {
		t.Fatalf("after first merge: got %+v", c)
	}

	// Recorded under the cumulative-mean mode, merged after SetEWMA: the
	// pending batch {3, 5} folds with α=0.5 as one batch at its mean 4 —
	// new = (1-α)²·1 + (1-(1-α)²)·4 = 0.25 + 3 = 3.25. The cumulative mean
	// would have given (1+3+5)/3 = 3.
	rec.Observe("f", 3.0, 0)
	rec.Observe("f", 5.0, 0)
	reg.SetEWMA(0.5)
	c, _ := reg.Lookup("f")
	if c.Count != 3 || !closeRel(c.AvgWork, 3.25, 1e-12) {
		t.Fatalf("EWMA batch merge: got n=%d w=%v, want n=3 w=3.25", c.Count, c.AvgWork)
	}

	// Already-merged history is never rewritten: switching back to the
	// cumulative mean only affects how future batches fold in.
	reg.SetEWMA(0)
	if c, _ := reg.Lookup("f"); !closeRel(c.AvgWork, 3.25, 1e-12) {
		t.Fatalf("mode switch rewrote merged history: %v", c.AvgWork)
	}
	rec.Observe("f", 3.25, 0)
	if c, _ := reg.Lookup("f"); c.Count != 4 || !closeRel(c.AvgWork, 3.25, 1e-12) {
		t.Fatalf("cumulative fold after switch: got %+v", c)
	}
}

// TestShardedResetDropsPending asserts Reset discards shard observations
// that were recorded but never merged.
func TestShardedResetDropsPending(t *testing.T) {
	reg := NewSharded(4)
	reg.Recorder(1).Observe("g", 2.0, 0)
	reg.Recorder(2).Observe("g", 4.0, 0)
	reg.Reset()
	if n := reg.Len(); n != 0 {
		t.Fatalf("Len after Reset: got %d, want 0", n)
	}
	reg.Recorder(1).Observe("g", 8.0, 0)
	if c, ok := reg.Lookup("g"); !ok || c.Count != 1 || c.AvgWork != 8.0 {
		t.Fatalf("post-Reset observation: got %+v ok=%v", c, ok)
	}
}

// TestShardedConcurrentRecorders hammers the record/merge protocol from
// all sides under the race detector: every shard's owner records
// concurrently while pollers merge via Lookup/Snapshot/Len/Epoch. The
// final merged counts must account for every observation exactly once.
func TestShardedConcurrentRecorders(t *testing.T) {
	const (
		shards = 8
		perRec = 2000
	)
	reg := NewSharded(shards)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch p {
				case 0:
					reg.Snapshot()
				case 1:
					reg.Lookup("c1")
				default:
					_ = reg.Len()
					_ = reg.Epoch()
				}
			}
		}(p)
	}

	var rwg sync.WaitGroup
	for w := 0; w < shards; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			rec := reg.Recorder(w)
			for i := 0; i < perRec; i++ {
				rec.Observe(fmt.Sprintf("c%d", i%5), float64(i%7)*0.01, 0)
			}
		}(w)
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	total := 0
	for _, c := range reg.Snapshot() {
		total += c.Count
	}
	if want := shards * perRec; total != want {
		t.Fatalf("merged observation count: got %d, want %d", total, want)
	}
	if e := reg.Epoch(); e != uint64(shards*perRec) {
		t.Fatalf("Epoch: got %d, want %d", e, shards*perRec)
	}
}

func TestRecorderGrowsShardSet(t *testing.T) {
	// Recorder(w) beyond the constructed shard count is the entry point an
	// elastic runtime uses to hand a joining worker a fresh history shard:
	// the set must grow copy-on-write, keep old recorders valid, return a
	// stable pointer, and fold the grown shard's observations exactly.
	reg := NewSharded(2)
	if got := reg.Shards(); got != 2 {
		t.Fatalf("constructed shards = %d, want 2", got)
	}
	rec := reg.Recorder(5)
	if got := reg.Shards(); got != 6 {
		t.Fatalf("shards after Recorder(5) = %d, want 6", got)
	}
	if reg.Recorder(5) != rec {
		t.Fatal("grown recorder pointer not stable across calls")
	}
	if reg.Recorder(1) == nil || reg.Recorder(3) == nil {
		t.Fatal("growth lost intermediate recorders")
	}

	reg.Recorder(0).Observe("a", 1, 0)
	rec.Observe("b", 2, 0)
	rec.Observe("b", 4, 0)
	cl, ok := reg.Lookup("b")
	if !ok || cl.Count != 2 {
		t.Fatalf("grown shard's class after merge: %+v ok=%v", cl, ok)
	}
	if cl.AvgWork != 3 {
		t.Fatalf("grown shard's AvgWork = %v, want 3", cl.AvgWork)
	}
	total := 0
	for _, c := range reg.Snapshot() {
		total += c.Count
	}
	if total != 3 {
		t.Fatalf("merged observation count = %d, want 3 (old + grown shards)", total)
	}
}
