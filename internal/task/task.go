// Package task defines the task model shared by the discrete-event
// simulator and the live runtime, together with the task-class statistics
// of the WATS paper (TC(f, n, w), Algorithm 2, Eq. 2).
//
// A Task carries a "function name" Class — the unit of history-based
// classification — and a ground-truth amount of work expressed in
// fastest-core time units (the time the task would take on a core of the
// fastest speed F1). The scheduler never reads Work directly: it only
// observes measured, Eq.2-normalized workloads of completed tasks.
//
// Tasks may contain spawn points: offsets (in own-work units) at which a
// child task is created. The engine executes the stretches between spawn
// points ("segments") and applies the configured spawn discipline
// (parent-first or child-first) at each spawn point, which is what lets
// the simulator distinguish MIT Cilk's work-first policy from the
// parent-first policy WATS requires for correct workload measurement.
package task

import (
	"fmt"
	"sort"
)

// State enumerates the lifecycle of a task inside an engine run.
type State int8

const (
	// Created means the task exists but has not been enqueued yet.
	Created State = iota
	// Queued means the task sits in some pool awaiting execution.
	Queued
	// Running means a core is currently executing the task.
	Running
	// Suspended means the task hit a spawn point under the child-first
	// discipline and its continuation is queued or inline on a core.
	Suspended
	// Done means the task has completed all of its work.
	Done
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Spawn is a spawn point: when the owning task has executed At units of its
// own work, Child is spawned.
type Spawn struct {
	// At is the offset into the parent's own work, in fastest-core time
	// units, at which the child is created. Must lie in [0, Work].
	At float64
	// Child is the task to spawn. Its own spawn points nest arbitrarily.
	Child *Task
}

// Task is one schedulable unit of work.
type Task struct {
	// ID is unique within one engine run.
	ID int
	// Class is the "function name" used for history-based classification.
	Class string
	// Work is the ground-truth CPU demand in fastest-core time units.
	// Only the workload generator and the metrics code read it; scheduling
	// policies must not.
	Work float64
	// Spawns lists this task's spawn points sorted ascending by At.
	Spawns []Spawn
	// OnComplete, if non-nil, runs when the task finishes. Pipeline
	// workloads use it to inject the next-stage task. It must not block.
	OnComplete func(t *Task)
	// Main marks the program's main task (a batch's root spawner): the
	// runtime executes it on the fastest core (§IV-E: "WATS schedules
	// the main task of a parallel program on the fastest core... we make
	// all other schedulers launch the main task on the fastest core").
	Main bool
	// MemFrac is the fraction of the task's Work that is memory-stall
	// time (§IV-E extension). Stalls do not speed up on fast cores: on a
	// core of relative speed rel the task's execution time is
	// Work*(1-MemFrac)/rel + Work*MemFrac. Zero for pure CPU-bound tasks.
	MemFrac float64
	// CMPI is the task's cache-misses-per-instruction figure reported by
	// the virtual performance counters (0 for pure CPU-bound tasks); the
	// memory-aware WATS variant classifies classes by it (§IV-E).
	CMPI float64

	// --- engine-owned state ---

	// Done_ is how much of Work has been executed.
	Done_ float64
	// NextSpawn indexes the first spawn point not yet taken.
	NextSpawn int
	// State is the current lifecycle state.
	State State
	// Measured is the Eq.2-normalized workload observed so far by the
	// performance counters: elapsed virtual time on speed Fi contributes
	// elapsed*Fi/F1. Under child-first spawning this also accrues the
	// cycles of descendants executed inline, reproducing the
	// mis-measurement that motivates WATS's parent-first choice (§III-C).
	Measured float64
	// StartT and EndT are virtual times of first dispatch and completion.
	StartT, EndT float64
	// LastCore is the core that last executed (or is executing) the task.
	LastCore int
	// Parent points to the spawning task, nil for root tasks.
	Parent *Task
	// Depth is the spawn-tree depth (roots are 0).
	Depth int
}

// Remaining returns the task's unexecuted own work in fastest-core units.
func (t *Task) Remaining() float64 { return t.Work - t.Done_ }

// NextStop returns the own-work offset at which execution must pause next:
// the next spawn point, or the end of the task.
func (t *Task) NextStop() float64 {
	if t.NextSpawn < len(t.Spawns) {
		return t.Spawns[t.NextSpawn].At
	}
	return t.Work
}

// SortSpawns sorts the spawn points ascending by offset and clamps them
// into [0, Work]. Generators call it once after construction.
func (t *Task) SortSpawns() {
	for i := range t.Spawns {
		if t.Spawns[i].At < 0 {
			t.Spawns[i].At = 0
		}
		if t.Spawns[i].At > t.Work {
			t.Spawns[i].At = t.Work
		}
	}
	sort.SliceStable(t.Spawns, func(i, j int) bool { return t.Spawns[i].At < t.Spawns[j].At })
}

// TotalWork returns the task's own work plus that of all descendants
// reachable through spawn points. Pipeline successors created by
// OnComplete hooks are not included (they do not exist yet).
func (t *Task) TotalWork() float64 {
	w := t.Work
	for _, s := range t.Spawns {
		w += s.Child.TotalWork()
	}
	return w
}

// CountTasks returns 1 plus the number of descendants via spawn points.
func (t *Task) CountTasks() int {
	n := 1
	for _, s := range t.Spawns {
		n += s.Child.CountTasks()
	}
	return n
}

// Validate checks structural invariants of the task tree: non-negative
// work, spawn offsets within range and sorted, no nil children, and no
// cycles. It returns the first violation found.
func (t *Task) Validate() error {
	seen := map[*Task]bool{}
	var walk func(u *Task) error
	walk = func(u *Task) error {
		if u == nil {
			return fmt.Errorf("task: nil task in spawn tree")
		}
		if seen[u] {
			return fmt.Errorf("task %d (%s): cycle in spawn tree", u.ID, u.Class)
		}
		seen[u] = true
		if u.Work < 0 {
			return fmt.Errorf("task %d (%s): negative work %v", u.ID, u.Class, u.Work)
		}
		prev := 0.0
		for i, s := range u.Spawns {
			if s.Child == nil {
				return fmt.Errorf("task %d (%s): spawn %d has nil child", u.ID, u.Class, i)
			}
			if s.At < prev {
				return fmt.Errorf("task %d (%s): spawn offsets not sorted at %d", u.ID, u.Class, i)
			}
			if s.At > u.Work {
				return fmt.Errorf("task %d (%s): spawn offset %v beyond work %v", u.ID, u.Class, s.At, u.Work)
			}
			prev = s.At
			if err := walk(s.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t)
}

// New returns a leaf task with the given class and work.
func New(class string, work float64) *Task {
	return &Task{Class: class, Work: work}
}
