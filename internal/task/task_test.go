package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLeafTask(t *testing.T) {
	tk := New("f", 2.5)
	if tk.Class != "f" || tk.Work != 2.5 || len(tk.Spawns) != 0 {
		t.Fatalf("unexpected task %+v", tk)
	}
	if tk.Remaining() != 2.5 {
		t.Fatalf("Remaining=%v", tk.Remaining())
	}
	if tk.NextStop() != 2.5 {
		t.Fatalf("NextStop=%v, want end of task", tk.NextStop())
	}
}

func TestNextStopWithSpawns(t *testing.T) {
	tk := New("f", 10)
	tk.Spawns = []Spawn{{At: 3, Child: New("c", 1)}, {At: 7, Child: New("c", 1)}}
	if tk.NextStop() != 3 {
		t.Fatalf("NextStop=%v want 3", tk.NextStop())
	}
	tk.Done_ = 3
	tk.NextSpawn = 1
	if tk.NextStop() != 7 {
		t.Fatalf("NextStop=%v want 7", tk.NextStop())
	}
	tk.NextSpawn = 2
	if tk.NextStop() != 10 {
		t.Fatalf("NextStop=%v want 10", tk.NextStop())
	}
}

func TestSortSpawnsClampsAndOrders(t *testing.T) {
	tk := New("f", 5)
	tk.Spawns = []Spawn{
		{At: 7, Child: New("a", 1)},
		{At: -1, Child: New("b", 1)},
		{At: 2, Child: New("c", 1)},
	}
	tk.SortSpawns()
	if tk.Spawns[0].At != 0 || tk.Spawns[1].At != 2 || tk.Spawns[2].At != 5 {
		t.Fatalf("spawns not clamped/sorted: %+v", tk.Spawns)
	}
}

func TestTotalWorkAndCount(t *testing.T) {
	root := New("r", 1)
	c1 := New("c", 2)
	c2 := New("c", 3)
	gc := New("g", 4)
	c1.Spawns = []Spawn{{At: 1, Child: gc}}
	root.Spawns = []Spawn{{At: 0, Child: c1}, {At: 1, Child: c2}}
	if got := root.TotalWork(); got != 10 {
		t.Fatalf("TotalWork=%v want 10", got)
	}
	if got := root.CountTasks(); got != 4 {
		t.Fatalf("CountTasks=%v want 4", got)
	}
}

func TestValidate(t *testing.T) {
	ok := New("r", 2)
	ok.Spawns = []Spawn{{At: 1, Child: New("c", 1)}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}

	neg := New("r", -1)
	if err := neg.Validate(); err == nil {
		t.Fatal("negative work accepted")
	}

	nilChild := New("r", 2)
	nilChild.Spawns = []Spawn{{At: 1, Child: nil}}
	if err := nilChild.Validate(); err == nil {
		t.Fatal("nil child accepted")
	}

	unsorted := New("r", 5)
	unsorted.Spawns = []Spawn{{At: 3, Child: New("c", 1)}, {At: 1, Child: New("c", 1)}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unsorted spawns accepted")
	}

	beyond := New("r", 2)
	beyond.Spawns = []Spawn{{At: 5, Child: New("c", 1)}}
	if err := beyond.Validate(); err == nil {
		t.Fatal("spawn beyond work accepted")
	}

	cyclic := New("r", 2)
	cyclic.Spawns = []Spawn{{At: 1, Child: cyclic}}
	if err := cyclic.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Created: "created", Queued: "queued", Running: "running",
		Suspended: "suspended", Done: "done", State(42): "state(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String()=%q want %q", s, got, want)
		}
	}
}

func TestRegistryAlgorithm2(t *testing.T) {
	r := NewRegistry()
	// First observation creates the class TC(f, 1, w).
	if created := r.Observe("f", 4); !created {
		t.Fatal("first Observe should create the class")
	}
	c, ok := r.Lookup("f")
	if !ok || c.Count != 1 || c.AvgWork != 4 {
		t.Fatalf("after first observe: %+v", c)
	}
	// Update: TC(f, n, w) => TC(f, n+1, (n*w+wγ)/(n+1)).
	if created := r.Observe("f", 8); created {
		t.Fatal("second Observe should not create")
	}
	c, _ = r.Lookup("f")
	if c.Count != 2 || math.Abs(c.AvgWork-6) > 1e-12 {
		t.Fatalf("after second observe: %+v", c)
	}
	r.Observe("f", 3)
	c, _ = r.Lookup("f")
	if c.Count != 3 || math.Abs(c.AvgWork-5) > 1e-12 {
		t.Fatalf("after third observe: %+v", c)
	}
}

func TestRegistryRunningAverageProperty(t *testing.T) {
	// The running average of Algorithm 2 must equal the arithmetic mean.
	check := func(ws []float64) bool {
		r := NewRegistry()
		var sum float64
		n := 0
		for _, w := range ws {
			w = math.Abs(w)
			if math.IsInf(w, 0) || math.IsNaN(w) || w > 1e12 {
				continue
			}
			r.Observe("f", w)
			sum += w
			n++
		}
		if n == 0 {
			return true
		}
		c, _ := r.Lookup("f")
		mean := sum / float64(n)
		return c.Count == n && math.Abs(c.AvgWork-mean) <= 1e-9*math.Max(1, mean)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.Observe("small", 1)
	r.Observe("big", 10)
	r.Observe("mid", 5)
	s := r.Snapshot()
	if len(s) != 3 || s[0].Name != "big" || s[1].Name != "mid" || s[2].Name != "small" {
		t.Fatalf("snapshot not sorted by AvgWork desc: %+v", s)
	}
	// Ties break by name for determinism.
	r2 := NewRegistry()
	r2.Observe("b", 1)
	r2.Observe("a", 1)
	s2 := r2.Snapshot()
	if s2[0].Name != "a" {
		t.Fatalf("tie not broken by name: %+v", s2)
	}
}

func TestRegistryEpochAndReset(t *testing.T) {
	r := NewRegistry()
	e0 := r.Epoch()
	r.Observe("f", 1)
	if r.Epoch() == e0 {
		t.Fatal("epoch did not advance on Observe")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left classes")
	}
	if _, ok := r.Lookup("f"); ok {
		t.Fatal("Lookup found class after Reset")
	}
}

func TestClassTotalWork(t *testing.T) {
	c := Class{Name: "f", Count: 4, AvgWork: 2.5}
	if c.TotalWork() != 10 {
		t.Fatalf("TotalWork=%v want 10", c.TotalWork())
	}
}

func TestRegistryConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				r.Observe("f", 2)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	c, _ := r.Lookup("f")
	if c.Count != 4000 || math.Abs(c.AvgWork-2) > 1e-9 {
		t.Fatalf("concurrent observes lost updates: %+v", c)
	}
}
