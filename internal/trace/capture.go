package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// This file is the durable half of the decision ledger: typed per-task
// decision/lifecycle records (emitted by the live runtime through
// obs.Tracer's ledger hook), a bounded rotating NDJSON sink that streams
// them from a running watsd, and the parser the digital twin
// (cmd/watstwin) ingests captures with. The record types live here — not
// in package obs — because obs already imports trace for the Chrome
// exporter, and the capture sink must not create an import cycle.

// Decision is one scheduling decision: where a task of a class was routed
// at spawn time, why, and what the class history knew at that instant —
// the paper's TC(f, n, w) record as the allocator saw it when the rule
// fired.
type Decision struct {
	// ID joins the decision with its TaskEnd; unique per tracer lifetime.
	ID uint64 `json:"id"`
	// TS is nanoseconds since the tracer's start (the arrival timestamp
	// the twin replays the task at).
	TS int64 `json:"ts"`
	// Class is the task's class (function name f).
	Class string `json:"class"`
	// Worker is the spawning worker, or -1 for external submissions.
	Worker int32 `json:"worker"`
	// Cluster is the c-group cluster the allocation rule chose.
	Cluster int32 `json:"cluster"`
	// Depth is the destination queue depth observed at the decision.
	Depth int32 `json:"depth"`
	// Rule names the allocation rule that fired (sched.Rule* constants).
	Rule string `json:"rule"`
	// EstWork is the class's average normalized workload (w of TC(f,n,w))
	// at decision time, in fastest-core seconds; negative when the class
	// was unknown to the history.
	EstWork float64 `json:"est_work"`
	// EstCount is n of TC(f,n,w): completed tasks folded into the class
	// record at decision time.
	EstCount int64 `json:"est_n"`
}

// TaskEnd closes one decision: when the task started executing, when it
// finished, and its Eq.2-normalized work — or that it was dropped
// cancelled without running.
type TaskEnd struct {
	ID      uint64 `json:"id"`
	Worker  int32  `json:"worker"`
	Cluster int32  `json:"cluster"`
	// Start/End are nanoseconds since the tracer's start. End-Start is
	// wall execution (emulation stall included); End minus the decision's
	// TS is the task's sojourn time.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Work is the Eq.2-normalized execution time in nanoseconds
	// (fastest-core work), the ground truth the twin replays.
	Work      int64 `json:"work"`
	Cancelled bool  `json:"cancelled,omitempty"`
}

// RepartitionRecord is one helper-thread rebuild of the class-to-cluster
// map, with the new assignment.
type RepartitionRecord struct {
	TS      int64          `json:"ts"`
	Dur     int64          `json:"dur"`
	Classes map[string]int `json:"classes"`
}

// ResizeRecord is one elastic worker-pool resize.
type ResizeRecord struct {
	TS  int64 `json:"ts"`
	Old int   `json:"old"`
	New int   `json:"new"`
}

// Sink receives ledger records. Implementations must be safe for
// concurrent use and must not block the caller: the emitting side is the
// runtime's spawn/complete hot path.
type Sink interface {
	RecordDecision(Decision)
	RecordTaskEnd(TaskEnd)
	RecordRepartition(RepartitionRecord)
	RecordResize(ResizeRecord)
}

// CaptureHeader describes the live run a capture was taken from: enough
// for the twin to rebuild the same architecture and scheduler settings.
// It is the first NDJSON line of every capture file (repeated after each
// rotation so every file is self-describing).
type CaptureHeader struct {
	Version int `json:"version"`
	// Policy is the live sched.Kind — the twin's fidelity baseline.
	Policy string `json:"policy"`
	// GroupCounts/GroupFreqs describe the AMC shape (one entry per
	// c-group).
	GroupCounts []int     `json:"group_counts"`
	GroupFreqs  []float64 `json:"group_freqs"`
	// HelperPeriodNS is the live helper-thread cadence.
	HelperPeriodNS int64 `json:"helper_period_ns"`
	// SpeedEmulation reports whether asymmetry stalls were on; a capture
	// taken without them replays with distorted per-group speeds.
	SpeedEmulation bool `json:"speed_emulation"`
	// StartUnixNS anchors the tracer-relative timestamps to wall time.
	StartUnixNS int64 `json:"start_unix_ns"`
}

// CaptureFooter is the last line of a stopped capture: live-side totals
// the twin report quotes as context.
type CaptureFooter struct {
	EnergyJoules float64 `json:"energy_joules"`
	TasksRun     int64   `json:"tasks_run"`
	Decisions    uint64  `json:"decisions"`
	Ends         uint64  `json:"ends"`
	Dropped      uint64  `json:"dropped"`
}

// CaptureVersion is the capture file format version written by this
// package.
const CaptureVersion = 1

// CaptureConfig configures a Capture sink.
type CaptureConfig struct {
	// Path is the NDJSON file to stream to. Required.
	Path string
	// MaxBytes rotates the file when it exceeds this size (default 64 MiB).
	MaxBytes int64
	// MaxFiles bounds rotated files kept as Path.1 (newest) .. Path.N
	// (default 4); older ones are deleted, so total disk usage stays under
	// (MaxFiles+1) x MaxBytes.
	MaxFiles int
	// Buffer is the record-channel depth between the emitting hot path and
	// the writer goroutine (default 8192). When the writer falls behind and
	// the buffer fills, records are dropped and counted, never blocked on.
	Buffer int
}

func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxFiles <= 0 {
		c.MaxFiles = 4
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	return c
}

// CaptureStats is a point-in-time view of a capture sink.
type CaptureStats struct {
	Path      string `json:"path"`
	Active    bool   `json:"active"`
	Decisions uint64 `json:"decisions"`
	Ends      uint64 `json:"ends"`
	// Dropped counts records lost because the writer's buffer was full —
	// nonzero means the capture undercounts (the twin still works; it just
	// sees a sample).
	Dropped   uint64 `json:"dropped"`
	Bytes     int64  `json:"bytes"`
	Rotations int64  `json:"rotations"`
}

// Capture streams ledger records to a rotating, bounded NDJSON file. The
// Record* methods enqueue onto a buffered channel and never block (full
// buffer = counted drop); a single writer goroutine marshals and writes.
// Attach it to a live runtime with obs.Tracer.SetLedger and detach before
// Close.
type Capture struct {
	cfg    CaptureConfig
	header CaptureHeader

	ch     chan any
	closed atomic.Bool

	decisions atomic.Uint64
	ends      atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Int64
	rotations atomic.Int64

	// Writer-goroutine-only state.
	f       *os.File
	w       *bufio.Writer
	written int64
}

// closeMsg asks the writer goroutine to append the footer, flush, and
// exit. It travels on the same channel as records, so everything enqueued
// before Close is written first.
type closeMsg struct {
	footer CaptureFooter
	ack    chan error
}

// Wire line wrappers: one NDJSON object per record, tagged by "ev".
type headerLine struct {
	Ev string `json:"ev"`
	CaptureHeader
}
type decisionLine struct {
	Ev string `json:"ev"`
	Decision
}
type endLine struct {
	Ev string `json:"ev"`
	TaskEnd
}
type repartitionLine struct {
	Ev string `json:"ev"`
	RepartitionRecord
}
type resizeLine struct {
	Ev string `json:"ev"`
	ResizeRecord
}
type footerLine struct {
	Ev string `json:"ev"`
	CaptureFooter
}

// NewCapture opens the capture file, writes the header line, and starts
// the writer goroutine.
func NewCapture(cfg CaptureConfig, h CaptureHeader) (*Capture, error) {
	cfg = cfg.withDefaults()
	if cfg.Path == "" {
		return nil, fmt.Errorf("trace: CaptureConfig.Path is required")
	}
	h.Version = CaptureVersion
	c := &Capture{cfg: cfg, header: h, ch: make(chan any, cfg.Buffer)}
	if err := c.open(); err != nil {
		return nil, err
	}
	go c.writeLoop()
	return c, nil
}

// Header returns the header the capture was opened with.
func (c *Capture) Header() CaptureHeader { return c.header }

// open is called from NewCapture and, on rotation, from the writer
// goroutine.
func (c *Capture) open() error {
	f, err := os.Create(c.cfg.Path)
	if err != nil {
		return fmt.Errorf("trace: capture: %w", err)
	}
	c.f = f
	c.w = bufio.NewWriterSize(f, 64<<10)
	c.written = 0
	return c.writeLine(headerLine{Ev: "header", CaptureHeader: c.header})
}

// RecordDecision implements Sink.
func (c *Capture) RecordDecision(d Decision) {
	if c.enqueue(d) {
		c.decisions.Add(1)
	}
}

// RecordTaskEnd implements Sink.
func (c *Capture) RecordTaskEnd(e TaskEnd) {
	if c.enqueue(e) {
		c.ends.Add(1)
	}
}

// RecordRepartition implements Sink.
func (c *Capture) RecordRepartition(r RepartitionRecord) { c.enqueue(r) }

// RecordResize implements Sink.
func (c *Capture) RecordResize(r ResizeRecord) { c.enqueue(r) }

func (c *Capture) enqueue(rec any) bool {
	if c.closed.Load() {
		return false
	}
	select {
	case c.ch <- rec:
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// Stats snapshots the capture counters.
func (c *Capture) Stats() CaptureStats {
	return CaptureStats{
		Path:      c.cfg.Path,
		Active:    !c.closed.Load(),
		Decisions: c.decisions.Load(),
		Ends:      c.ends.Load(),
		Dropped:   c.dropped.Load(),
		Bytes:     c.bytes.Load(),
		Rotations: c.rotations.Load(),
	}
}

// Close drains everything enqueued so far, appends the footer line
// (filling in the record counts), flushes, and closes the file. Detach
// the sink from the tracer before calling; records arriving after Close
// are dropped. Idempotent: later calls return nil without rewriting.
func (c *Capture) Close(footer CaptureFooter) error {
	if c.closed.Swap(true) {
		return nil
	}
	ack := make(chan error, 1)
	c.ch <- closeMsg{footer: footer, ack: ack}
	return <-ack
}

func (c *Capture) writeLoop() {
	for rec := range c.ch {
		switch m := rec.(type) {
		case Decision:
			c.handleWrite(decisionLine{Ev: "decision", Decision: m})
		case TaskEnd:
			c.handleWrite(endLine{Ev: "end", TaskEnd: m})
		case RepartitionRecord:
			c.handleWrite(repartitionLine{Ev: "repartition", RepartitionRecord: m})
		case ResizeRecord:
			c.handleWrite(resizeLine{Ev: "resize", ResizeRecord: m})
		case closeMsg:
			m.footer.Decisions = c.decisions.Load()
			m.footer.Ends = c.ends.Load()
			m.footer.Dropped = c.dropped.Load()
			err := c.writeLine(footerLine{Ev: "footer", CaptureFooter: m.footer})
			if ferr := c.w.Flush(); err == nil {
				err = ferr
			}
			if cerr := c.f.Close(); err == nil {
				err = cerr
			}
			m.ack <- err
			return
		}
	}
}

func (c *Capture) handleWrite(line any) {
	if err := c.writeLine(line); err != nil {
		// Disk trouble: count the loss and keep going; Close reports the
		// terminal error when flushing.
		c.dropped.Add(1)
		return
	}
	if c.written >= c.cfg.MaxBytes {
		c.rotate()
	}
}

func (c *Capture) writeLine(line any) error {
	b, err := json.Marshal(line)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	n, err := c.w.Write(b)
	c.written += int64(n)
	c.bytes.Add(int64(n))
	return err
}

// rotate shifts Path -> Path.1 -> ... -> Path.MaxFiles (oldest dropped)
// and reopens Path with a fresh header, bounding total disk usage.
func (c *Capture) rotate() {
	_ = c.w.Flush()
	_ = c.f.Close()
	_ = os.Remove(fmt.Sprintf("%s.%d", c.cfg.Path, c.cfg.MaxFiles))
	for i := c.cfg.MaxFiles - 1; i >= 1; i-- {
		_ = os.Rename(fmt.Sprintf("%s.%d", c.cfg.Path, i), fmt.Sprintf("%s.%d", c.cfg.Path, i+1))
	}
	_ = os.Rename(c.cfg.Path, c.cfg.Path+".1")
	c.rotations.Add(1)
	if err := c.open(); err != nil {
		// Could not reopen: further writes will fail and be counted as
		// drops through handleWrite.
		c.w = bufio.NewWriter(io.Discard)
		c.f, _ = os.Open(os.DevNull)
	}
}

// Captured is a parsed capture file.
type Captured struct {
	Header       CaptureHeader
	Decisions    []Decision
	Ends         []TaskEnd
	Repartitions []RepartitionRecord
	Resizes      []ResizeRecord
	// Footer is nil when the capture was cut off before a clean stop.
	Footer *CaptureFooter
}

// ParseCapture parses one NDJSON capture stream (a single file; rotated
// predecessors can be concatenated in age order first). Unknown "ev" tags
// are skipped so older readers survive newer writers.
func ParseCapture(r io.Reader) (*Captured, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	out := &Captured{}
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
		}
		switch probe.Ev {
		case "header":
			var h headerLine
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			// Rotation repeats the header; keep the first.
			if !sawHeader {
				out.Header = h.CaptureHeader
				sawHeader = true
			}
		case "decision":
			var d decisionLine
			if err := json.Unmarshal(raw, &d); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			out.Decisions = append(out.Decisions, d.Decision)
		case "end":
			var e endLine
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			out.Ends = append(out.Ends, e.TaskEnd)
		case "repartition":
			var rp repartitionLine
			if err := json.Unmarshal(raw, &rp); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			out.Repartitions = append(out.Repartitions, rp.RepartitionRecord)
		case "resize":
			var rs resizeLine
			if err := json.Unmarshal(raw, &rs); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			out.Resizes = append(out.Resizes, rs.ResizeRecord)
		case "footer":
			var f footerLine
			if err := json.Unmarshal(raw, &f); err != nil {
				return nil, fmt.Errorf("trace: capture line %d: %w", lineNo, err)
			}
			ft := f.CaptureFooter
			out.Footer = &ft
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: capture: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: capture has no header line")
	}
	return out, nil
}

// ParseCaptureFile parses one capture file from disk.
func ParseCaptureFile(path string) (*Captured, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ParseCapture(f)
}
