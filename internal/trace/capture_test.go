package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader() CaptureHeader {
	return CaptureHeader{
		Policy:      "WATS",
		GroupCounts: []int{2, 2}, GroupFreqs: []float64{2.0, 0.8},
		HelperPeriodNS: 1e6, SpeedEmulation: true, StartUnixNS: 12345,
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.ndjson")
	c, err := NewCapture(CaptureConfig{Path: path}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	c.RecordDecision(Decision{ID: 1, Class: "sha1", Worker: -1, Cluster: 0, Depth: 3, Rule: "history-partition", EstWork: 0.004, EstCount: 17})
	c.RecordDecision(Decision{ID: 2, Class: "md5", Worker: 1, Cluster: 1, Rule: "default-fastest", EstWork: -1})
	c.RecordTaskEnd(TaskEnd{ID: 1, Worker: 0, Cluster: 0, Start: 100, End: 4100, Work: 4000})
	c.RecordTaskEnd(TaskEnd{ID: 2, Worker: 1, Cluster: 1, Cancelled: true})
	c.RecordRepartition(RepartitionRecord{TS: 50, Dur: 10, Classes: map[string]int{"sha1": 0}})
	c.RecordResize(ResizeRecord{TS: 60, Old: 4, New: 6})
	if err := c.Close(CaptureFooter{EnergyJoules: 1.5, TasksRun: 2}); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := c.Close(CaptureFooter{}); err != nil {
		t.Fatal(err)
	}
	// Records after Close are dropped, not written.
	c.RecordDecision(Decision{ID: 3})

	got, err := ParseCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Version != CaptureVersion || got.Header.Policy != "WATS" || len(got.Header.GroupCounts) != 2 {
		t.Fatalf("header: %+v", got.Header)
	}
	if len(got.Decisions) != 2 || len(got.Ends) != 2 || len(got.Repartitions) != 1 || len(got.Resizes) != 1 {
		t.Fatalf("counts: %d decisions %d ends %d reparts %d resizes",
			len(got.Decisions), len(got.Ends), len(got.Repartitions), len(got.Resizes))
	}
	d := got.Decisions[0]
	if d.ID != 1 || d.Class != "sha1" || d.Rule != "history-partition" || d.EstWork != 0.004 || d.EstCount != 17 {
		t.Fatalf("decision: %+v", d)
	}
	if !got.Ends[1].Cancelled || got.Ends[0].Work != 4000 {
		t.Fatalf("ends: %+v", got.Ends)
	}
	if got.Footer == nil {
		t.Fatal("missing footer")
	}
	if got.Footer.Decisions != 2 || got.Footer.Ends != 2 || got.Footer.EnergyJoules != 1.5 {
		t.Fatalf("footer: %+v", got.Footer)
	}
	st := c.Stats()
	if st.Active || st.Decisions != 2 || st.Ends != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCaptureRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.ndjson")
	// Tiny MaxBytes forces rotation after nearly every record.
	c, err := NewCapture(CaptureConfig{Path: path, MaxBytes: 256, MaxFiles: 2}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.RecordDecision(Decision{ID: uint64(i + 1), Class: "f", Rule: "history-partition"})
	}
	if err := c.Close(CaptureFooter{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	// Only Path, Path.1, Path.2 may exist — older generations deleted.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("missing first rotated file: %v", err)
	}
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, 3)); err == nil {
		t.Fatal("rotation kept more than MaxFiles files")
	}
	// Every surviving file is self-describing: it parses on its own.
	for _, p := range []string{path, path + ".1", path + ".2"} {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		got, err := ParseCaptureFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.Header.Policy != "WATS" {
			t.Fatalf("%s: header not repeated after rotation", p)
		}
	}
}

func TestCaptureDropCounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.ndjson")
	c, err := NewCapture(CaptureConfig{Path: path, Buffer: 1}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the 1-slot buffer far faster than the writer can drain it;
	// with 100k attempts at least one must find the buffer full.
	for i := 0; i < 100000; i++ {
		c.RecordDecision(Decision{ID: uint64(i + 1), Class: "burst"})
	}
	if err := c.Close(CaptureFooter{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected drops with a 1-slot buffer")
	}
	if st.Decisions+st.Dropped != 100000 {
		t.Fatalf("accepted %d + dropped %d != 100000", st.Decisions, st.Dropped)
	}
	got, err := ParseCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Footer == nil || got.Footer.Dropped != st.Dropped {
		t.Fatalf("footer does not report drops: %+v", got.Footer)
	}
}

func TestParseCaptureErrors(t *testing.T) {
	if _, err := ParseCapture(strings.NewReader("")); err == nil {
		t.Fatal("empty stream should fail: no header")
	}
	if _, err := ParseCapture(strings.NewReader(`{"ev":"decision","id":1}` + "\n")); err == nil {
		t.Fatal("headerless stream should fail")
	}
	if _, err := ParseCapture(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line should fail")
	}
	// Unknown event tags are skipped for forward compatibility.
	in := `{"ev":"header","version":1,"policy":"WATS"}` + "\n" +
		`{"ev":"hologram","x":1}` + "\n" +
		`{"ev":"decision","id":7,"class":"f"}` + "\n"
	got, err := ParseCapture(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != 1 || got.Decisions[0].ID != 7 {
		t.Fatalf("decisions: %+v", got.Decisions)
	}
	if got.Footer != nil {
		t.Fatal("truncated capture should have nil footer")
	}
	if _, err := NewCapture(CaptureConfig{}, CaptureHeader{}); err == nil {
		t.Fatal("empty path should fail")
	}
}
