// Package trace records and analyzes fine-grained execution traces of
// simulator runs: per-core Gantt segments, steal/snatch logs, utilization
// timelines, and textual/CSV exports. Attach a Recorder via
// sim.Config.Tracer.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Segment is one executed stretch of a task on a core.
type Segment struct {
	Core       int
	TaskID     int
	Class      string
	Start, End float64
}

// StealEvent is one successful steal.
type StealEvent struct {
	Thief, Victim, Cluster, TaskID int
	At                             float64
}

// SnatchEvent is one preemption.
type SnatchEvent struct {
	Thief, Victim, TaskID int
	At                    float64
}

// CompleteEvent is one task completion.
type CompleteEvent struct {
	Core, TaskID int
	Class        string
	At           float64
}

// RepartitionEvent is one helper-tick rebuild of the class-to-cluster map
// (Algorithm 1): the virtual time it happened and the new assignment.
type RepartitionEvent struct {
	At      float64
	Classes map[string]int
}

// Recorder implements sim.Tracer by accumulating all events. It also
// implements the optional repartition-tracing extension the strategy
// layer probes for, so helper-tick rebuilds land in the trace alongside
// steals and completions.
type Recorder struct {
	Segments     []Segment
	Steals       []StealEvent
	Snatches     []SnatchEvent
	Completes    []CompleteEvent
	Repartitions []RepartitionEvent
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Segment implements sim.Tracer.
func (r *Recorder) Segment(core, taskID int, class string, start, end float64) {
	r.Segments = append(r.Segments, Segment{core, taskID, class, start, end})
}

// Complete implements sim.Tracer.
func (r *Recorder) Complete(core, taskID int, class string, at float64) {
	r.Completes = append(r.Completes, CompleteEvent{core, taskID, class, at})
}

// Steal implements sim.Tracer.
func (r *Recorder) Steal(thief, victim, cluster, taskID int, at float64) {
	r.Steals = append(r.Steals, StealEvent{thief, victim, cluster, taskID, at})
}

// Snatch implements sim.Tracer.
func (r *Recorder) Snatch(thief, victim, taskID int, at float64) {
	r.Snatches = append(r.Snatches, SnatchEvent{thief, victim, taskID, at})
}

// Repartition records one cluster-map rebuild (the optional extension of
// sim.Tracer the sched adapter emits through).
func (r *Recorder) Repartition(at float64, classes map[string]int) {
	r.Repartitions = append(r.Repartitions, RepartitionEvent{at, classes})
}

// Makespan returns the last recorded segment end.
func (r *Recorder) Makespan() float64 {
	var m float64
	for _, s := range r.Segments {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// NumCores returns 1 + the largest core id seen.
func (r *Recorder) NumCores() int {
	n := 0
	for _, s := range r.Segments {
		if s.Core+1 > n {
			n = s.Core + 1
		}
	}
	return n
}

// Utilization returns, for nbuckets equal time buckets, the fraction of
// cores busy in each bucket.
func (r *Recorder) Utilization(nbuckets int) []float64 {
	if nbuckets <= 0 {
		nbuckets = 50
	}
	ms := r.Makespan()
	cores := r.NumCores()
	if ms == 0 || cores == 0 {
		return make([]float64, nbuckets)
	}
	busy := make([]float64, nbuckets)
	bw := ms / float64(nbuckets)
	for _, s := range r.Segments {
		b0 := int(s.Start / bw)
		b1 := int(s.End / bw)
		for b := b0; b <= b1 && b < nbuckets; b++ {
			lo := float64(b) * bw
			hi := lo + bw
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi > lo {
				busy[b] += hi - lo
			}
		}
	}
	for b := range busy {
		busy[b] /= bw * float64(cores)
	}
	return busy
}

// CoreBusy returns total busy time per core.
func (r *Recorder) CoreBusy() []float64 {
	out := make([]float64, r.NumCores())
	for _, s := range r.Segments {
		out[s.Core] += s.End - s.Start
	}
	return out
}

// ClassPlacement returns, per class, the work-time executed on each core.
func (r *Recorder) ClassPlacement() map[string][]float64 {
	n := r.NumCores()
	out := map[string][]float64{}
	for _, s := range r.Segments {
		v := out[s.Class]
		if v == nil {
			v = make([]float64, n)
			out[s.Class] = v
		}
		v[s.Core] += s.End - s.Start
	}
	return out
}

// StealMatrix returns counts[thief][victim].
func (r *Recorder) StealMatrix() [][]int {
	n := r.NumCores()
	for _, s := range r.Steals {
		if s.Thief+1 > n {
			n = s.Thief + 1
		}
		if s.Victim+1 > n {
			n = s.Victim + 1
		}
	}
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, s := range r.Steals {
		m[s.Thief][s.Victim]++
	}
	return m
}

// Gantt renders an ASCII Gantt chart with the given width in character
// cells, one row per core. Cells show the first letter of the class
// occupying most of the cell's time; idle cells show '.'.
func (r *Recorder) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	ms := r.Makespan()
	cores := r.NumCores()
	if ms == 0 || cores == 0 {
		return ""
	}
	cw := ms / float64(width)
	grid := make([][]map[byte]float64, cores)
	for c := range grid {
		grid[c] = make([]map[byte]float64, width)
	}
	for _, s := range r.Segments {
		letter := byte('?')
		if len(s.Class) > 0 {
			letter = s.Class[0]
		}
		b0 := int(s.Start / cw)
		b1 := int(s.End / cw)
		for b := b0; b <= b1 && b < width; b++ {
			lo := float64(b) * cw
			hi := lo + cw
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi <= lo {
				continue
			}
			if grid[s.Core][b] == nil {
				grid[s.Core][b] = map[byte]float64{}
			}
			grid[s.Core][b][letter] += hi - lo
		}
	}
	var sb strings.Builder
	for c := 0; c < cores; c++ {
		fmt.Fprintf(&sb, "core %2d |", c)
		for b := 0; b < width; b++ {
			cell := grid[c][b]
			if len(cell) == 0 {
				sb.WriteByte('.')
				continue
			}
			var best byte
			bestT := -1.0
			keys := make([]int, 0, len(cell))
			for k := range cell {
				keys = append(keys, int(k))
			}
			sort.Ints(keys)
			for _, k := range keys {
				if cell[byte(k)] > bestT {
					bestT = cell[byte(k)]
					best = byte(k)
				}
			}
			sb.WriteByte(best)
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// SegmentsCSV exports segments as CSV (core,task,class,start,end).
func (r *Recorder) SegmentsCSV() string {
	var sb strings.Builder
	sb.WriteString("core,task,class,start,end\n")
	for _, s := range r.Segments {
		fmt.Fprintf(&sb, "%d,%d,%s,%.9f,%.9f\n", s.Core, s.TaskID, s.Class, s.Start, s.End)
	}
	return sb.String()
}
