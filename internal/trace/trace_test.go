package trace_test

import (
	"math"
	"strings"
	"testing"

	"wats/internal/amc"
	"wats/internal/sched"
	"wats/internal/sim"
	"wats/internal/trace"
	"wats/internal/workload"
)

func record(t *testing.T) (*trace.Recorder, *sim.Result) {
	rec := trace.New()
	w := workload.GA(5)
	w.Batches = 2
	res, err := sim.New(amc.AMC2, sched.MustNew(sched.KindWATS),
		sim.Config{Seed: 5, Tracer: rec}).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderConsistency(t *testing.T) {
	rec, res := record(t)
	if len(rec.Completes) != res.TasksDone {
		t.Fatalf("completes %d != tasks %d", len(rec.Completes), res.TasksDone)
	}
	if math.Abs(rec.Makespan()-res.Makespan) > 1e-9 {
		t.Fatalf("trace makespan %v != result %v", rec.Makespan(), res.Makespan)
	}
	if rec.NumCores() != 16 {
		t.Fatalf("NumCores=%d", rec.NumCores())
	}
	// Per-core busy from segments matches the engine's accounting.
	busy := rec.CoreBusy()
	for i, c := range res.Cores {
		if math.Abs(busy[i]-c.Busy) > 1e-6 {
			t.Fatalf("core %d busy %v != %v", i, busy[i], c.Busy)
		}
	}
	if len(rec.Steals) != res.Steals {
		t.Fatalf("steal events %d != counter %d", len(rec.Steals), res.Steals)
	}
}

func TestSegmentsNonOverlappingPerCore(t *testing.T) {
	rec, _ := record(t)
	byCore := map[int][]trace.Segment{}
	for _, s := range rec.Segments {
		if s.End < s.Start {
			t.Fatalf("segment with negative duration: %+v", s)
		}
		byCore[s.Core] = append(byCore[s.Core], s)
	}
	for core, segs := range byCore {
		for i := 1; i < len(segs); i++ {
			// Engine emits per-core segments in time order.
			if segs[i].Start < segs[i-1].End-1e-9 {
				t.Fatalf("core %d segments overlap: %+v then %+v", core, segs[i-1], segs[i])
			}
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	rec, _ := record(t)
	u := rec.Utilization(40)
	if len(u) != 40 {
		t.Fatalf("len=%d", len(u))
	}
	for i, v := range u {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("utilization[%d]=%v out of [0,1]", i, v)
		}
	}
	// Average utilization should be substantial for a WATS run.
	var sum float64
	for _, v := range u {
		sum += v
	}
	if sum/40 < 0.3 {
		t.Fatalf("mean utilization %v suspiciously low", sum/40)
	}
}

func TestClassPlacementAndStealMatrix(t *testing.T) {
	rec, _ := record(t)
	place := rec.ClassPlacement()
	if len(place) < 5 {
		t.Fatalf("placement classes: %d", len(place))
	}
	m := rec.StealMatrix()
	var total int
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("self-steal recorded at core %d", i)
		}
		for _, v := range m[i] {
			total += v
		}
	}
	if total != len(rec.Steals) {
		t.Fatalf("steal matrix total %d != %d", total, len(rec.Steals))
	}
}

func TestGanttAndCSV(t *testing.T) {
	rec, _ := record(t)
	g := rec.Gantt(60)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("gantt rows: %d", len(lines))
	}
	csv := rec.SegmentsCSV()
	if !strings.HasPrefix(csv, "core,task,class,start,end\n") {
		t.Fatal("csv header missing")
	}
	if strings.Count(csv, "\n") != len(rec.Segments)+1 {
		t.Fatal("csv row count mismatch")
	}
}

func TestEmptyRecorder(t *testing.T) {
	rec := trace.New()
	if rec.Makespan() != 0 || rec.NumCores() != 0 {
		t.Fatal("empty recorder not zeroed")
	}
	if rec.Gantt(10) != "" {
		t.Fatal("empty gantt should be empty")
	}
	u := rec.Utilization(5)
	if len(u) != 5 {
		t.Fatal("utilization length")
	}
}
