// Package twin is the counterfactual engine behind cmd/watstwin: it
// replays one captured live trace (the decision ledger's NDJSON, see
// internal/trace) through the discrete-event simulator under every
// scheduling policy, and reports how each would have handled the exact
// traffic the live service saw — p99/mean sojourn and energy deltas
// against the live baseline, plus a twin-fidelity line (simulated vs live
// p99 under the *actual* policy) that says how far to trust the
// counterfactuals.
package twin

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"wats/internal/amc"
	"wats/internal/report"
	"wats/internal/sched"
	"wats/internal/sim"
	"wats/internal/trace"
	"wats/internal/workload"
)

// Options configures a twin run.
type Options struct {
	// Seed seeds every simulator run (one fixed seed = byte-identical
	// reports for the same capture).
	Seed uint64
	// Sweep adds WATS helper-period and EWMA parameter variants beyond
	// the eight policy kinds.
	Sweep bool
}

// Variant is one counterfactual to simulate: a policy kind at a helper
// period, optionally with the EWMA history extension.
type Variant struct {
	Label        string
	Kind         sched.Kind
	HelperPeriod float64 // seconds
	EWMAAlpha    float64 // 0 = cumulative mean (Algorithm 2 verbatim)
}

// Row is one ranked line of the report: a simulated variant and its
// deltas vs the live run. Latency deltas compare simulated sojourns with
// the live ledger's; the energy delta compares against the simulated
// baseline variant (the live policy's replay), since the live footer's
// energy covers the whole serve window, not just the captured tasks.
type Row struct {
	Policy         string  `json:"policy"`
	HelperPeriodMS float64 `json:"helper_period_ms"`
	EWMAAlpha      float64 `json:"ewma_alpha,omitempty"`
	P99MS          float64 `json:"p99_ms"`
	MeanMS         float64 `json:"mean_ms"`
	MakespanS      float64 `json:"makespan_s"`
	EnergyJ        float64 `json:"energy_j"`
	Steals         int     `json:"steals"`
	DeltaP99Pct    float64 `json:"delta_p99_pct"`
	DeltaMeanPct   float64 `json:"delta_mean_pct"`
	DeltaEnergyPct float64 `json:"delta_energy_pct"`
	// Baseline marks the live policy's own replay — the fidelity anchor
	// and the energy-delta reference.
	Baseline bool `json:"baseline,omitempty"`
}

// Report is the deterministic twin report: everything derives from the
// capture, the seed and the code — no wall clock, no map iteration, so
// the same inputs yield byte-identical JSON and markdown.
type Report struct {
	Trace      string `json:"trace"`
	LivePolicy string `json:"live_policy"`
	Arch       string `json:"arch"`
	Seed       uint64 `json:"seed"`
	// Tasks replayed and records skipped (cancelled or unmatched), plus
	// live-side capture drops — the coverage caveats.
	Tasks       int     `json:"tasks"`
	Skipped     int     `json:"skipped"`
	DroppedLive uint64  `json:"dropped_live"`
	LiveP99MS   float64 `json:"live_p99_ms"`
	LiveMeanMS  float64 `json:"live_mean_ms"`
	LiveEnergyJ float64 `json:"live_energy_j,omitempty"`
	// FidelityPct is |simulated p99 - live p99| / live p99 for the live
	// policy's own replay, in percent: the twin's error bar.
	FidelityPct float64 `json:"fidelity_pct"`
	// Best is the top-ranked (lowest simulated p99) variant.
	Best string `json:"best"`
	Rows []Row  `json:"rows"`
}

// Variants returns the counterfactual set for a capture: all eight
// policy kinds at the live helper period, plus (with sweep) WATS
// helper-period and EWMA variants.
func Variants(h trace.CaptureHeader, sweep bool) []Variant {
	hp := float64(h.HelperPeriodNS) / 1e9
	if hp <= 0 {
		hp = 1e-3
	}
	kinds := append(append([]sched.Kind{}, sched.Kinds...), sched.KindWATSMem)
	var vs []Variant
	for _, k := range kinds {
		vs = append(vs, Variant{Label: string(k), Kind: k, HelperPeriod: hp})
	}
	if sweep {
		vs = append(vs,
			Variant{Label: "WATS hp=0.25ms", Kind: sched.KindWATS, HelperPeriod: 0.25e-3},
			Variant{Label: "WATS hp=4ms", Kind: sched.KindWATS, HelperPeriod: 4e-3},
			Variant{Label: "WATS ewma=0.2", Kind: sched.KindWATS, HelperPeriod: hp, EWMAAlpha: 0.2},
			Variant{Label: "WATS ewma=0.5", Kind: sched.KindWATS, HelperPeriod: hp, EWMAAlpha: 0.5},
		)
	}
	return vs
}

// archOf rebuilds the live architecture from the capture header.
func archOf(h trace.CaptureHeader) (*amc.Arch, error) {
	if len(h.GroupCounts) == 0 || len(h.GroupCounts) != len(h.GroupFreqs) {
		return nil, fmt.Errorf("twin: capture header has a bad architecture (%d counts, %d freqs)",
			len(h.GroupCounts), len(h.GroupFreqs))
	}
	groups := make([]amc.CGroup, len(h.GroupCounts))
	for i := range h.GroupCounts {
		groups[i] = amc.CGroup{Freq: h.GroupFreqs[i], N: h.GroupCounts[i]}
	}
	return amc.New("twin", groups...)
}

func policyOf(v Variant) (sim.Policy, error) {
	if v.EWMAAlpha > 0 {
		w := sched.NewWATS()
		w.EWMAAlpha = v.EWMAAlpha
		w.SetName(v.Label)
		return w, nil
	}
	if v.Label != string(v.Kind) {
		// A swept WATS variant: build directly so the label sticks.
		w := sched.NewWATS()
		w.SetName(v.Label)
		return w, nil
	}
	return sched.New(v.Kind)
}

// quantile returns the q-quantile of sorted-ascending xs using the
// ceil-rank convention — the same formula for live and simulated
// sojourns, so the fidelity comparison is apples to apples.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// liveSojourns extracts the live per-task sojourn times (end minus
// decision timestamp, seconds) for completed tasks.
func liveSojourns(c *trace.Captured) []float64 {
	ends := make(map[uint64]*trace.TaskEnd, len(c.Ends))
	for i := range c.Ends {
		ends[c.Ends[i].ID] = &c.Ends[i]
	}
	var out []float64
	for _, d := range c.Decisions {
		if e, ok := ends[d.ID]; ok && !e.Cancelled && e.End >= d.TS {
			out = append(out, float64(e.End-d.TS)/1e9)
		}
	}
	return out
}

// round keeps reports stable and readable: every float in the report is
// rounded to 3 decimals before marshalling.
func round(v float64) float64 { return math.Round(v*1000) / 1000 }

func deltaPct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return round((v - base) / base * 100)
}

// Run replays the capture under every variant and assembles the report.
func Run(name string, c *trace.Captured, opts Options) (*Report, error) {
	arch, err := archOf(c.Header)
	if err != nil {
		return nil, err
	}
	live := liveSojourns(c)
	if len(live) == 0 {
		return nil, fmt.Errorf("twin: capture %q has no completed tasks to replay", name)
	}
	sort.Float64s(live)
	liveP99 := quantile(live, 0.99)
	liveMean := mean(live)

	rep := &Report{
		Trace:      name,
		LivePolicy: c.Header.Policy,
		Arch:       arch.String(),
		Seed:       opts.Seed,
		LiveP99MS:  round(liveP99 * 1e3),
		LiveMeanMS: round(liveMean * 1e3),
	}
	if c.Footer != nil {
		rep.LiveEnergyJ = round(c.Footer.EnergyJoules)
		rep.DroppedLive = c.Footer.Dropped
	}

	for _, v := range Variants(c.Header, opts.Sweep) {
		pol, err := policyOf(v)
		if err != nil {
			return nil, err
		}
		// Fresh arch and workload per run: the engine mutates tasks and a
		// strategy is single-use.
		a, err := archOf(c.Header)
		if err != nil {
			return nil, err
		}
		ol, skipped, err := workload.FromCapture(name, c)
		if err != nil {
			return nil, err
		}
		rep.Tasks = len(ol.Arrivals)
		rep.Skipped = skipped
		eng := sim.New(a, pol, sim.Config{
			Seed:         opts.Seed,
			HelperPeriod: v.HelperPeriod,
			CollectTasks: true,
		})
		res, err := eng.Run(ol)
		if err != nil {
			return nil, fmt.Errorf("twin: replay under %s: %w", v.Label, err)
		}
		soj := ol.Sojourns(res.Completed)
		sort.Float64s(soj)
		p99 := quantile(soj, 0.99)
		row := Row{
			Policy:         v.Label,
			HelperPeriodMS: round(v.HelperPeriod * 1e3),
			EWMAAlpha:      v.EWMAAlpha,
			P99MS:          round(p99 * 1e3),
			MeanMS:         round(mean(soj) * 1e3),
			MakespanS:      round(res.Makespan),
			EnergyJ:        round(res.EnergyJoules),
			Steals:         res.Steals,
			DeltaP99Pct:    deltaPct(p99, liveP99),
			DeltaMeanPct:   deltaPct(mean(soj), liveMean),
			Baseline:       v.Label == c.Header.Policy && v.EWMAAlpha == 0,
		}
		rep.Rows = append(rep.Rows, row)
	}

	// Energy deltas are sim-vs-sim: the baseline variant's simulated
	// energy is the reference (the live footer's joules cover the whole
	// serve window, not only the captured tasks).
	baseEnergy := rep.Rows[0].EnergyJ
	for _, r := range rep.Rows {
		if r.Baseline {
			baseEnergy = r.EnergyJ
			rep.FidelityPct = round(math.Abs(r.P99MS-rep.LiveP99MS) / rep.LiveP99MS * 100)
		}
	}
	for i := range rep.Rows {
		rep.Rows[i].DeltaEnergyPct = deltaPct(rep.Rows[i].EnergyJ, baseEnergy)
	}

	sort.SliceStable(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].P99MS != rep.Rows[j].P99MS {
			return rep.Rows[i].P99MS < rep.Rows[j].P99MS
		}
		return rep.Rows[i].Policy < rep.Rows[j].Policy
	})
	rep.Best = rep.Rows[0].Policy
	return rep, nil
}

// JSON renders the report as stable, indented JSON (struct field order +
// rounded floats = byte-identical for identical inputs).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Markdown renders the ranked report for humans.
func (r *Report) Markdown() string {
	t := report.NewTable(
		fmt.Sprintf("Digital twin: %s on %s (live policy %s, seed %d)", r.Trace, r.Arch, r.LivePolicy, r.Seed),
		"policy", "helper", "p99 ms", "Δp99", "mean ms", "Δmean", "energy J", "Δenergy", "steals")
	for _, row := range r.Rows {
		label := row.Policy
		if row.Baseline {
			label += " *"
		}
		t.AddRow(label,
			(time.Duration(row.HelperPeriodMS * float64(time.Millisecond))).String(),
			fmt.Sprintf("%.3f", row.P99MS),
			fmt.Sprintf("%+.1f%%", row.DeltaP99Pct),
			fmt.Sprintf("%.3f", row.MeanMS),
			fmt.Sprintf("%+.1f%%", row.DeltaMeanPct),
			fmt.Sprintf("%.1f", row.EnergyJ),
			fmt.Sprintf("%+.1f%%", row.DeltaEnergyPct),
			fmt.Sprintf("%d", row.Steals),
		)
	}
	md := t.Markdown()
	md += fmt.Sprintf("\n`*` live baseline policy. Latency deltas vs the live ledger (p99 %.3f ms, mean %.3f ms); energy deltas vs the baseline replay.\n",
		r.LiveP99MS, r.LiveMeanMS)
	md += fmt.Sprintf("\n- **best policy**: %s\n- **twin fidelity**: simulated p99 within %.1f%% of live under %s\n- replayed %d tasks (%d records skipped, %d live drops)\n",
		r.Best, r.FidelityPct, r.LivePolicy, r.Tasks, r.Skipped, r.DroppedLive)
	if r.LiveEnergyJ > 0 {
		md += fmt.Sprintf("- live serve-window energy: %.1f J (context only; sim energy covers captured tasks)\n", r.LiveEnergyJ)
	}
	return md
}
