package twin

import (
	"bytes"
	"strings"
	"testing"

	"wats/internal/sched"
	"wats/internal/trace"
)

// synthCapture builds a deterministic fake capture: 60 tasks of three
// classes over ~60ms on a 2-fast + 2-slow machine.
func synthCapture() *trace.Captured {
	ms := int64(1e6)
	c := &trace.Captured{
		Header: trace.CaptureHeader{
			Version: 1, Policy: string(sched.KindWATS),
			GroupCounts: []int{2, 2}, GroupFreqs: []float64{2.0, 0.8},
			HelperPeriodNS: ms, SpeedEmulation: true,
		},
		Footer: &trace.CaptureFooter{EnergyJoules: 12.5, TasksRun: 60},
	}
	classes := []struct {
		name string
		work int64 // ns of fastest-core time
	}{{"sha1", 4 * ms}, {"md5", 2 * ms}, {"lzw", 6 * ms}}
	id := uint64(0)
	for i := 0; i < 60; i++ {
		cl := classes[i%3]
		id++
		ts := int64(i) * ms
		c.Decisions = append(c.Decisions, trace.Decision{
			ID: id, TS: ts, Class: cl.name, Rule: "history-partition",
		})
		c.Ends = append(c.Ends, trace.TaskEnd{
			ID: id, Start: ts + ms, End: ts + ms + cl.work, Work: cl.work,
		})
	}
	return c
}

func TestRunRanksAllPolicies(t *testing.T) {
	rep, err := Run("synth", synthCapture(), Options{Seed: 1, Sweep: true})
	if err != nil {
		t.Fatal(err)
	}
	// Eight policy kinds + four swept WATS variants.
	if len(rep.Rows) != 12 {
		t.Fatalf("rows: %d, want 12", len(rep.Rows))
	}
	want := append(append([]sched.Kind{}, sched.Kinds...), sched.KindWATSMem)
	seen := map[string]bool{}
	var baselines int
	for _, r := range rep.Rows {
		seen[r.Policy] = true
		if r.Baseline {
			baselines++
			if r.Policy != string(sched.KindWATS) {
				t.Fatalf("baseline is %s, want live policy WATS", r.Policy)
			}
			if r.DeltaEnergyPct != 0 {
				t.Fatalf("baseline energy delta must be 0: %+v", r)
			}
		}
	}
	if baselines != 1 {
		t.Fatalf("baselines: %d", baselines)
	}
	for _, k := range want {
		if !seen[string(k)] {
			t.Fatalf("missing policy %s in report", k)
		}
	}
	if rep.Best != rep.Rows[0].Policy {
		t.Fatal("Best must name the top-ranked row")
	}
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].P99MS < rep.Rows[i-1].P99MS {
			t.Fatalf("rows not sorted by p99: %v then %v", rep.Rows[i-1].P99MS, rep.Rows[i].P99MS)
		}
	}
	if rep.Tasks != 60 || rep.Skipped != 0 {
		t.Fatalf("coverage: tasks=%d skipped=%d", rep.Tasks, rep.Skipped)
	}
	if rep.LiveP99MS <= 0 || rep.FidelityPct < 0 {
		t.Fatalf("live stats: %+v", rep)
	}
}

// TestRunDeterministic is the acceptance gate: the same capture and seed
// must yield byte-identical JSON and markdown.
func TestRunDeterministic(t *testing.T) {
	render := func() ([]byte, string) {
		rep, err := Run("synth", synthCapture(), Options{Seed: 7, Sweep: true})
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, rep.Markdown()
	}
	j1, m1 := render()
	j2, m2 := render()
	if !bytes.Equal(j1, j2) {
		t.Fatal("same capture + seed produced different JSON")
	}
	if m1 != m2 {
		t.Fatal("same capture + seed produced different markdown")
	}
	// A different seed is allowed to differ, but must still parse and
	// rank; sanity-check the markdown carries the fidelity line.
	if !strings.Contains(m1, "twin fidelity") || !strings.Contains(m1, "best policy") {
		t.Fatalf("markdown missing summary lines:\n%s", m1)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("x", &trace.Captured{}, Options{}); err == nil {
		t.Fatal("empty capture must fail")
	}
	c := synthCapture()
	c.Header.GroupFreqs = c.Header.GroupFreqs[:1]
	if _, err := Run("x", c, Options{}); err == nil {
		t.Fatal("mismatched arch header must fail")
	}
}
