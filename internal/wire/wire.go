// Package wire is the length-prefixed binary protocol for the
// persistent job stream (server /v1/stream, client DialStream,
// watsload -mode stream). One long-lived TCP connection carries
// pipelined submissions and out-of-order results, so steady-state job
// traffic pays no per-request HTTP or JSON cost — and, because every
// frame is encoded into and parsed from caller-owned buffers, no
// per-job allocation either.
//
// Framing: each frame is a 4-byte big-endian payload length followed by
// the payload; the first payload byte is the frame type. The connection
// starts life as an HTTP GET with "Upgrade: wats-stream/1"; the server
// answers 101 Switching Protocols and immediately sends a HELLO frame
// carrying the workload table (name/class per numeric id), after which
// the client pipelines SUBMIT frames and the server returns one RESULT
// frame per submission, in completion order, correlated by the
// client-chosen request id.
//
// All integers are big-endian. Strings are length-prefixed within their
// frame. DESIGN.md §12 documents the layout byte by byte.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Proto is the Upgrade token for the handshake.
const Proto = "wats-stream/1"

// Frame types (first payload byte).
const (
	FrameHello  byte = 1 // server→client: workload table
	FrameSubmit byte = 2 // client→server: one job
	FrameResult byte = 3 // server→client: one outcome
)

// Result outcomes. The first four mirror the job statuses; the rest are
// admission rejections that never became jobs.
const (
	OutcomeOK       byte = 0 // completed; HTTP 200
	OutcomeExpired  byte = 1 // deadline fired; HTTP 504
	OutcomeFailed   byte = 2 // workload error or runtime shutdown; HTTP 500
	OutcomePanicked byte = 3 // poisoned by a task panic; HTTP 500
	OutcomeShed     byte = 4 // no admission headroom; HTTP 429 (see RetryAfterMS)
	OutcomeDraining byte = 5 // submitted during drain; HTTP 503
	OutcomeBadReq   byte = 6 // unknown workload id / invalid params; HTTP 400
)

// MaxFrame bounds a single frame; larger is a protocol error, not a
// resource commitment.
const MaxFrame = 1 << 20

// Submit is one job submission. Zero-valued params mean the workload's
// defaults, same as the JSON API.
type Submit struct {
	ID          uint64 // client-chosen correlation id
	Workload    uint8  // index into the HELLO table
	DeadlineMS  int64  // 0 = server default
	Size        int64
	Seed        uint64
	N           int64
	Generations int64
}

// Result is one job outcome.
type Result struct {
	ID           uint64
	Outcome      byte
	QueueWaitUS  int64
	ExecUS       int64
	RetryAfterMS int64 // only for OutcomeShed
	Err          string
}

// HelloEntry is one workload table row.
type HelloEntry struct {
	ID    uint8
	Name  string
	Class string
}

const submitLen = 1 + 8 + 1 + 8 + 8 + 8 + 8 + 8 // type + fields
const resultHead = 1 + 8 + 1 + 8 + 8 + 8        // type + fields before Err

// AppendSubmit appends a complete SUBMIT frame (length prefix included).
func AppendSubmit(buf []byte, s *Submit) []byte {
	buf = binary.BigEndian.AppendUint32(buf, submitLen)
	buf = append(buf, FrameSubmit)
	buf = binary.BigEndian.AppendUint64(buf, s.ID)
	buf = append(buf, s.Workload)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.DeadlineMS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.Size))
	buf = binary.BigEndian.AppendUint64(buf, s.Seed)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.N))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.Generations))
	return buf
}

// ParseSubmit decodes a SUBMIT payload (type byte already consumed).
func ParseSubmit(p []byte, s *Submit) error {
	if len(p) != submitLen-1 {
		return fmt.Errorf("wire: submit payload %d bytes, want %d", len(p), submitLen-1)
	}
	s.ID = binary.BigEndian.Uint64(p[0:])
	s.Workload = p[8]
	s.DeadlineMS = int64(binary.BigEndian.Uint64(p[9:]))
	s.Size = int64(binary.BigEndian.Uint64(p[17:]))
	s.Seed = binary.BigEndian.Uint64(p[25:])
	s.N = int64(binary.BigEndian.Uint64(p[33:]))
	s.Generations = int64(binary.BigEndian.Uint64(p[41:]))
	return nil
}

// AppendResult appends a complete RESULT frame (length prefix included).
func AppendResult(buf []byte, r *Result) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(resultHead+len(r.Err)))
	buf = append(buf, FrameResult)
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = append(buf, r.Outcome)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.QueueWaitUS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.ExecUS))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.RetryAfterMS))
	return append(buf, r.Err...)
}

// ParseResult decodes a RESULT payload (type byte already consumed).
// The Err string is copied out of p, so the caller may reuse the buffer
// — the copy only allocates when Err is non-empty, i.e. off the happy
// path.
func ParseResult(p []byte, r *Result) error {
	if len(p) < resultHead-1 {
		return fmt.Errorf("wire: result payload %d bytes, want >= %d", len(p), resultHead-1)
	}
	r.ID = binary.BigEndian.Uint64(p[0:])
	r.Outcome = p[8]
	r.QueueWaitUS = int64(binary.BigEndian.Uint64(p[9:]))
	r.ExecUS = int64(binary.BigEndian.Uint64(p[17:]))
	r.RetryAfterMS = int64(binary.BigEndian.Uint64(p[25:]))
	if rest := p[33:]; len(rest) > 0 {
		r.Err = string(rest)
	} else {
		r.Err = ""
	}
	return nil
}

// AppendHello appends a complete HELLO frame (length prefix included).
func AppendHello(buf []byte, entries []HelloEntry) []byte {
	n := 1 + 2
	for _, e := range entries {
		n += 1 + 1 + len(e.Name) + 1 + len(e.Class)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, FrameHello)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.ID, byte(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = append(buf, byte(len(e.Class)))
		buf = append(buf, e.Class...)
	}
	return buf
}

// ParseHello decodes a HELLO payload (type byte already consumed).
func ParseHello(p []byte) ([]HelloEntry, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("wire: hello payload too short")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	entries := make([]HelloEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return nil, fmt.Errorf("wire: hello truncated at entry %d", i)
		}
		id, nameLen := p[0], int(p[1])
		p = p[2:]
		if len(p) < nameLen+1 {
			return nil, fmt.Errorf("wire: hello truncated at entry %d name", i)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		classLen := int(p[0])
		p = p[1:]
		if len(p) < classLen {
			return nil, fmt.Errorf("wire: hello truncated at entry %d class", i)
		}
		class := string(p[:classLen])
		p = p[classLen:]
		entries = append(entries, HelloEntry{ID: id, Name: name, Class: class})
	}
	return entries, nil
}

// ReadFrame reads one frame from br into buf (grown as needed),
// returning the frame type, the payload after the type byte (aliasing
// buf — valid until the next call), and the possibly-grown buffer.
func ReadFrame(br *bufio.Reader, buf []byte) (byte, []byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}
