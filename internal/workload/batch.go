// Package workload provides the task-generation side of the evaluation:
// batch-based and pipeline-based workload models for the nine benchmarks
// of Table III, the α-parameterized GA workload of Fig. 8, and special
// workloads (divide-and-conquer, phase changes) used by the extension
// tests.
//
// The paper runs real Cilk ports of BWT, Bzip2, DMC, GA, LZW, MD5, SHA-1
// and the PARSEC Dedup and Ferret pipelines on a DVFS-throttled Opteron.
// Here each benchmark is modeled by its *task-class mix*: which function
// names exist, how many tasks of each are launched per batch, and their
// relative CPU demands. The mixes are calibrated against the relative
// costs of the real kernels in package kernels (see DESIGN.md); per-task
// workloads get small multiplicative noise, matching the paper's
// assumption that same-function tasks have similar workloads. The
// absolute time unit is arbitrary in simulation; we use BaseT seconds per
// "t" of the paper's notation.
package workload

import (
	"fmt"
	"sort"

	"wats/internal/rng"
	"wats/internal/sim"
	"wats/internal/task"
)

// BaseT is the default value, in virtual seconds, of the paper's abstract
// task-size unit "t" (chosen so that full benchmark runs land in the
// tens-of-seconds range of Figs. 7–9).
const BaseT = 0.01

// DefaultNoise is the default coefficient of variation of per-task
// workloads within a class (same-function tasks have similar but not
// identical workloads).
const DefaultNoise = 0.05

// ClassSpec describes one task class inside a batch: Count tasks named
// Name, each costing Work fastest-core seconds on average. MemFrac and
// CMPI mark memory-bound classes for the §IV-E extension: MemFrac of the
// work is frequency-independent stall time, and CMPI is what the virtual
// performance counters report for the class's tasks.
type ClassSpec struct {
	Name    string
	Count   int
	Work    float64
	MemFrac float64
	CMPI    float64
}

// SpawnOrder selects the order a batch's tasks are spawned in.
type SpawnOrder int8

const (
	// OrderShuffled spawns tasks in a random interleaving.
	OrderShuffled SpawnOrder = iota
	// OrderLightFirst spawns tasks in ascending workload order.
	OrderLightFirst
	// OrderHeavyFirst spawns tasks in descending workload order.
	OrderHeavyFirst
)

// Batch is a batch-based workload (Table III): each batch launches the
// same class mix through a root "main" task that spawns the batch's tasks
// (parent-first or child-first according to the policy under test); the
// next batch starts when the previous one has fully completed.
type Batch struct {
	BenchName string
	Mix       []ClassSpec
	// Batches is how many times the mix is launched. Default 20.
	Batches int
	// Noise is the per-task workload CV. Default DefaultNoise; set
	// negative for exactly-repeatable workloads.
	Noise float64
	// SpawnGap is the root task's own work between consecutive spawn
	// points (the serial cost of spawning). Default 1e-5.
	SpawnGap float64
	// Seed seeds the generator's private randomness.
	Seed uint64
	// MainClass names the root spawner task's class. Default "main".
	MainClass string
	// Order controls the spawn order within a batch: OrderShuffled
	// (default) models an arbitrary interleaving; OrderLightFirst models
	// programs that enumerate small work units before large aggregates
	// (tree hashing spawns leaf chunks before archive digests);
	// OrderHeavyFirst the reverse.
	Order SpawnOrder

	// OnBatchStart, if set, is called with the upcoming batch index
	// (0-based) and may mutate Mix — used by the phase-change tests.
	OnBatchStart func(batch int, w *Batch)

	launched int
	r        *rng.Source
}

// Name implements sim.Workload.
func (w *Batch) Name() string { return w.BenchName }

func (w *Batch) defaults() {
	if w.Batches == 0 {
		w.Batches = 20
	}
	if w.Noise == 0 {
		w.Noise = DefaultNoise
	}
	if w.Noise < 0 {
		w.Noise = 0
	}
	if w.SpawnGap == 0 {
		w.SpawnGap = 1e-5
	}
	if w.MainClass == "" {
		w.MainClass = "main"
	}
	if w.r == nil {
		w.r = rng.New(w.Seed ^ 0x9E3779B97F4A7C15)
	}
}

// TasksPerBatch returns the number of leaf tasks each batch launches.
func (w *Batch) TasksPerBatch() int {
	n := 0
	for _, c := range w.Mix {
		n += c.Count
	}
	return n
}

// jitter returns a multiplicative noise factor with CV ≈ w.Noise.
func (w *Batch) jitter() float64 {
	if w.Noise == 0 {
		return 1
	}
	f := 1 + w.Noise*w.r.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// buildBatch builds the root spawner task for one batch: a "main" task
// whose spawn points release the batch's tasks in shuffled order (the
// order tasks are spawned in a real program is not sorted by size).
func (w *Batch) buildBatch(batch int) *task.Task {
	if w.OnBatchStart != nil {
		w.OnBatchStart(batch, w)
	}
	var leaves []*task.Task
	for _, c := range w.Mix {
		for i := 0; i < c.Count; i++ {
			leaf := task.New(c.Name, c.Work*w.jitter())
			leaf.MemFrac = c.MemFrac
			leaf.CMPI = c.CMPI
			leaves = append(leaves, leaf)
		}
	}
	w.r.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	switch w.Order {
	case OrderLightFirst:
		sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].Work < leaves[j].Work })
	case OrderHeavyFirst:
		sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].Work > leaves[j].Work })
	}
	root := task.New(w.MainClass, float64(len(leaves))*w.SpawnGap)
	root.Main = true
	for i, leaf := range leaves {
		root.Spawns = append(root.Spawns, task.Spawn{At: float64(i) * w.SpawnGap, Child: leaf})
	}
	return root
}

// Start implements sim.Workload.
func (w *Batch) Start(e *sim.Engine) {
	w.defaults()
	w.launched = 1
	e.Inject(w.buildBatch(0))
}

// OnQuiescent implements sim.Workload: launch the next batch, if any.
func (w *Batch) OnQuiescent(e *sim.Engine) bool {
	if w.launched >= w.Batches {
		return false
	}
	b := w.launched
	w.launched++
	e.Inject(w.buildBatch(b))
	return true
}

// TotalLeafWork returns the expected (noise-free) leaf work per batch.
func (w *Batch) TotalLeafWork() float64 {
	var s float64
	for _, c := range w.Mix {
		s += float64(c.Count) * c.Work
	}
	return s
}

// Validate checks the mix for positive counts and workloads.
func (w *Batch) Validate() error {
	if len(w.Mix) == 0 {
		return fmt.Errorf("workload %q: empty mix", w.BenchName)
	}
	for _, c := range w.Mix {
		if c.Count < 0 || c.Work < 0 {
			return fmt.Errorf("workload %q: invalid class %+v", w.BenchName, c)
		}
	}
	return nil
}
