package workload

import (
	"fmt"

	"wats/internal/sim"
)

// The nine benchmarks of Table III. Batch mixes are expressed in the
// paper's abstract unit t (BaseT seconds); counts are per 128-task batch.
//
// Calibration notes (see DESIGN.md §3): each benchmark is modeled by its
// task-class mix — which function names exist, how many tasks of each run
// per batch, and their relative CPU demands. Mixes were chosen so that
//
//   - within a class, workloads are similar (paper assumption 1);
//   - class-count proportions are stable across batches (assumption 2);
//   - heavy classes are few and heavy (8–16t) while light classes are
//     plentiful, which is what makes random stealing lose on AMC: a heavy
//     task started late on a 0.8 GHz core adds ~w/0.32 to the makespan;
//   - cumulative class weights are graded finely enough that Algorithm 1's
//     contiguous greedy partition lands near the proportional shares of
//     the Table II architectures (the paper's Fig. 9 shows the static
//     allocation alone — WATS-NP — already beats random stealing).
//
// SHA-1 is the most size-skewed benchmark (the paper's best case: −82.7%
// vs Cilk); Ferret's stages are uniform, so WATS is neutral there and only
// its bookkeeping overhead shows (≤4.7% worst case in Fig. 6a).

// GAAlphaMix returns the Fig. 8 GA batch mix: 128 tasks per batch with
// workloads 8t, 4t, 2t, t in counts α, α, α, 128−3α. The paper's x-axis
// runs to α=44, where 128−3α goes negative; the light-task count is
// clamped at zero there (the batch then has 3α=132 tasks).
func GAAlphaMix(alpha int, t float64) ([]ClassSpec, error) {
	if alpha < 0 || alpha > 44 {
		return nil, fmt.Errorf("workload: alpha=%d out of range [0,44]", alpha)
	}
	light := 128 - 3*alpha
	if light < 0 {
		light = 0
	}
	return []ClassSpec{
		{Name: "ga_migrate", Count: alpha, Work: 8 * t},
		{Name: "ga_evolve", Count: alpha, Work: 4 * t},
		{Name: "ga_select", Count: alpha, Work: 2 * t},
		{Name: "ga_eval", Count: light, Work: t},
	}, nil
}

// GA returns the island-model Genetic Algorithm workload used for
// Figs. 6, 7 and 9: islands of graded population sizes yield ten task
// classes from heavy migration/crossover work down to cheap statistics.
func GA(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "GA", Seed: seed, Mix: []ClassSpec{
		{Name: "ga_migrate", Count: 3, Work: 12 * t},
		{Name: "ga_cross_l", Count: 3, Work: 9 * t},
		{Name: "ga_cross_m", Count: 4, Work: 7 * t},
		{Name: "ga_mut_l", Count: 5, Work: 5.5 * t},
		{Name: "ga_mut_m", Count: 7, Work: 4 * t},
		{Name: "ga_select", Count: 10, Work: 2.8 * t},
		{Name: "ga_eval_l", Count: 13, Work: 2 * t},
		{Name: "ga_eval_m", Count: 22, Work: 1.3 * t},
		{Name: "ga_eval_s", Count: 28, Work: 0.9 * t},
		{Name: "ga_stats", Count: 33, Work: 0.75 * t},
	}}
}

// GAAlpha returns the Fig. 8 workload for a specific α.
func GAAlpha(alpha int, seed uint64) (*Batch, error) {
	mix, err := GAAlphaMix(alpha, BaseT)
	if err != nil {
		return nil, err
	}
	return &Batch{BenchName: fmt.Sprintf("GA(a=%d)", alpha), Mix: mix, Seed: seed}, nil
}

// BWT returns the Burrows-Wheeler Transform workload: suffix sorting of
// large blocks dominates; move-to-front and run-length passes are light.
func BWT(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "BWT", Seed: seed, Mix: []ClassSpec{
		{Name: "bwt_sort", Count: 6, Work: 8 * t},
		{Name: "bwt_sais", Count: 8, Work: 5 * t},
		{Name: "bwt_mtf", Count: 14, Work: 3 * t},
		{Name: "bwt_rle", Count: 50, Work: 1.2 * t},
		{Name: "bwt_emit", Count: 50, Work: 0.6 * t},
	}}
}

// Bzip2 returns the Bzip2-like compression workload: expensive Huffman
// table construction and block sorting, cheap RLE and CRC passes.
func Bzip2(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "Bzip-2", Seed: seed, Mix: []ClassSpec{
		{Name: "bz_huffman", Count: 6, Work: 10 * t},
		{Name: "bz_sort", Count: 10, Work: 6 * t},
		{Name: "bz_mtf", Count: 20, Work: 3 * t},
		{Name: "bz_rle", Count: 40, Work: 1.2 * t},
		{Name: "bz_crc", Count: 52, Work: 0.5 * t},
	}}
}

// DMC returns the Dynamic Markov Coding workload.
func DMC(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "DMC", Seed: seed, Mix: []ClassSpec{
		{Name: "dmc_model", Count: 8, Work: 6 * t},
		{Name: "dmc_tree", Count: 12, Work: 4 * t},
		{Name: "dmc_encode", Count: 28, Work: 2 * t},
		{Name: "dmc_predict", Count: 36, Work: 1 * t},
		{Name: "dmc_flush", Count: 44, Work: 0.4 * t},
	}}
}

// LZW returns the Lempel-Ziv-Welch workload.
func LZW(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "LZW", Seed: seed, Mix: []ClassSpec{
		{Name: "lzw_dict", Count: 6, Work: 9 * t},
		{Name: "lzw_block", Count: 10, Work: 5 * t},
		{Name: "lzw_encode", Count: 24, Work: 2.5 * t},
		{Name: "lzw_probe", Count: 40, Work: 1 * t},
		{Name: "lzw_emit", Count: 48, Work: 0.5 * t},
	}}
}

// MD5 returns the Message Digest workload: message lengths are heavy-
// tailed, so per-task costs span a 30× range.
func MD5(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "MD5", Seed: seed, Mix: []ClassSpec{
		{Name: "md5_huge", Count: 4, Work: 12 * t},
		{Name: "md5_large", Count: 8, Work: 6 * t},
		{Name: "md5_medium", Count: 24, Work: 2.5 * t},
		{Name: "md5_small", Count: 44, Work: 1 * t},
		{Name: "md5_tiny", Count: 48, Work: 0.4 * t},
	}}
}

// SHA1 returns the SHA-1 workload, the most size-skewed benchmark (WATS's
// best case in Fig. 6: up to −82.7% vs Cilk): a handful of whole-archive digests
// (17× the chunk size) next to a swarm of tiny chunk hashes, spawned
// leaf-chunks-first as tree hashing does. Random stealing strands archives
// on 0.8 GHz cores every batch; WATS pins them to the fast c-groups, and
// the class-weight ladder (26/19/13/42%) tracks the c-group capacity
// shares of the Table II architectures.
func SHA1(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "SHA-1", Seed: seed, Order: OrderLightFirst, Mix: []ClassSpec{
		{Name: "sha_iso", Count: 4, Work: 8 * t},
		{Name: "sha_tar", Count: 3, Work: 8 * t},
		{Name: "sha_file", Count: 8, Work: 2 * t},
		{Name: "sha_chunk", Count: 113, Work: 0.46 * t},
	}}
}

// Dedup returns the PARSEC Dedup workload at chunk-task granularity: each
// input buffer (one wave = one batch) splits into chunks whose work units
// differ sharply — unique chunks pay SHA-1 plus Ziv-Lempel compression
// (large chunks costing more than small ones), duplicate chunks pay the
// hash only, and sub-fragment bookkeeping is nearly free. The serial read
// and reorder stages ride in the root task, which the runtime schedules
// on the fastest core (§IV-E). The per-class cost spread is what random
// stealing mishandles on AMC.
func Dedup(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "Dedup", Seed: seed, Noise: 0.25, Mix: []ClassSpec{
		{Name: "dedup_unique_l", Count: 8, Work: 8 * t},
		{Name: "dedup_unique_m", Count: 10, Work: 4.5 * t},
		{Name: "dedup_unique_s", Count: 14, Work: 2.5 * t},
		{Name: "dedup_dup", Count: 80, Work: 1.2 * t},
		{Name: "dedup_frag", Count: 16, Work: 0.55 * t},
	}}
}

// Ferret returns the PARSEC Ferret similarity-search pipeline. Its tasks
// "have similar workloads", so WATS's allocation is neutral and only its
// bookkeeping overhead shows (Fig. 6a: ≤4.7% slowdown worst case).
func Ferret(seed uint64) *Pipeline {
	t := BaseT
	return &Pipeline{
		BenchName: "Ferret",
		Seed:      seed,
		SizeCV:    0.03,
		WaveItems: 64,
		Waves:     8,
		Stages: []StageSpec{
			{Name: "ferret_segment", Work: 1.5 * t},
			{Name: "ferret_extract", Work: 1.6 * t},
			{Name: "ferret_index", Work: 1.4 * t},
			{Name: "ferret_rank", Work: 1.5 * t},
		},
	}
}

// Benchmarks returns the nine Table III workloads in the paper's figure
// order (BWT, Bzip-2, Dedup, DMC, Ferret, GA, LZW, MD5, SHA-1).
func Benchmarks(seed uint64) []sim.Workload {
	return []sim.Workload{
		BWT(seed), Bzip2(seed), Dedup(seed), DMC(seed), Ferret(seed),
		GA(seed), LZW(seed), MD5(seed), SHA1(seed),
	}
}

// BenchmarkNames lists the Table III benchmark names in figure order.
var BenchmarkNames = []string{
	"BWT", "Bzip-2", "Dedup", "DMC", "Ferret", "GA", "LZW", "MD5", "SHA-1",
}

// ByName builds the named benchmark workload, or nil if unknown.
func ByName(name string, seed uint64) sim.Workload {
	switch name {
	case "BWT":
		return BWT(seed)
	case "Bzip-2", "Bzip2":
		return Bzip2(seed)
	case "Dedup":
		return Dedup(seed)
	case "DMC":
		return DMC(seed)
	case "Ferret":
		return Ferret(seed)
	case "GA":
		return GA(seed)
	case "LZW":
		return LZW(seed)
	case "MD5":
		return MD5(seed)
	case "SHA-1", "SHA1":
		return SHA1(seed)
	default:
		return nil
	}
}
