package workload

import (
	"math"
	"testing"

	"wats/internal/amc"
	"wats/internal/sched"
	"wats/internal/sim"
	"wats/internal/trace"
)

func TestOpenLoopReplaysArrivalProcess(t *testing.T) {
	w := &OpenLoop{
		TraceName: "ol",
		Arrivals: []Arrival{
			{At: 4, Class: "b", Work: 1}, // deliberately out of order
			{At: 0, Class: "a", Work: 1},
			{At: 8, Class: "a", Work: 1},
		},
	}
	e := sim.New(amc.MustNew("1c", amc.CGroup{Freq: 1, N: 1}),
		sched.MustNew(sched.KindWATS), sim.Config{Seed: 1, CollectTasks: true})
	res, err := e.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 3 {
		t.Fatalf("tasks: %d", res.TasksDone)
	}
	if math.Abs(res.Makespan-9) > 1e-9 {
		t.Fatalf("makespan=%v want 9 (last arrival at 8 + 1 work)", res.Makespan)
	}
	soj := w.Sojourns(res.Completed)
	if len(soj) != 3 {
		t.Fatalf("sojourns: %v", soj)
	}
	for _, s := range soj {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("an uncontended single-core arrival should sojourn exactly its work: %v", soj)
		}
	}
	if _, ok := w.ArrivalOf(res.Completed[0]); !ok {
		t.Fatal("ArrivalOf lost a task built by Start")
	}
}

func capFixture() *trace.Captured {
	ms := int64(1e6)
	return &trace.Captured{
		Header: trace.CaptureHeader{
			Policy: "WATS", GroupCounts: []int{1, 1}, GroupFreqs: []float64{2, 1},
		},
		Decisions: []trace.Decision{
			{ID: 1, TS: 10 * ms, Class: "sha1", Rule: "history-partition"},
			{ID: 2, TS: 12 * ms, Class: "md5", Rule: "default-fastest"},
			{ID: 3, TS: 14 * ms, Class: "lzw"},  // cancelled below
			{ID: 4, TS: 20 * ms, Class: "sha1"}, // no matching end
		},
		Ends: []trace.TaskEnd{
			{ID: 1, Work: 4 * ms},
			{ID: 2, Work: 2 * ms},
			{ID: 3, Cancelled: true},
			{ID: 99, Work: ms}, // end with no decision
		},
	}
}

func TestFromCapture(t *testing.T) {
	ol, skipped, err := FromCapture("cap", capFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Joined: 1 and 2. Skipped: cancelled 3, unmatched decision 4,
	// orphaned end 99.
	if len(ol.Arrivals) != 2 {
		t.Fatalf("arrivals: %+v", ol.Arrivals)
	}
	if skipped != 3 {
		t.Fatalf("skipped=%d want 3", skipped)
	}
	// Offsets are rebased to the first decision; work is in simulator
	// seconds of fastest-core time.
	a := ol.Arrivals[0]
	if a.Class != "sha1" || math.Abs(a.At) > 1e-9 || math.Abs(a.Work-0.004) > 1e-9 {
		t.Fatalf("first arrival: %+v", a)
	}
	b := ol.Arrivals[1]
	if b.Class != "md5" || math.Abs(b.At-0.002) > 1e-9 {
		t.Fatalf("second arrival: %+v", b)
	}
}

func TestFromCaptureErrors(t *testing.T) {
	if _, _, err := FromCapture("x", &trace.Captured{}); err == nil {
		t.Fatal("empty capture must fail")
	}
	// Decisions but nothing joinable: all cancelled.
	c := &trace.Captured{
		Decisions: []trace.Decision{{ID: 1, Class: "f"}},
		Ends:      []trace.TaskEnd{{ID: 1, Cancelled: true}},
	}
	if _, _, err := FromCapture("x", c); err == nil {
		t.Fatal("capture with zero usable arrivals must fail")
	}
}
