package workload

import (
	"fmt"

	"wats/internal/rng"
	"wats/internal/sim"
	"wats/internal/task"
)

// StageSpec describes one pipeline stage: every item passing through it
// spawns a task named Name costing Work times the item's size factor.
type StageSpec struct {
	Name string
	Work float64
}

// Pipeline is a pipeline-based workload (Dedup and Ferret in Table III):
// a stream of items flows through parallel stages; the completion of an
// item's stage-i task injects its stage-(i+1) task, so tasks of different
// stages run concurrently, communicating "via pipelines".
//
// Items enter in waves (the input buffers the real programs read and
// process one at a time): a wave of WaveItems items is released, its tasks
// flow through the stages, and the next wave starts when the pipeline has
// fully drained. Waves are deliberately small relative to the machine —
// that is where scheduling matters: near a wave's drain, a heavy stage
// task stranded on a 0.8 GHz core idles the rest of the machine, the
// pipeline "bubble" that workload-aware placement avoids.
type Pipeline struct {
	BenchName string
	Stages    []StageSpec
	// WaveItems is the number of items per wave. Default 32.
	WaveItems int
	// Waves is the number of waves. Default 16.
	Waves int
	// SizeCV is the coefficient of variation of per-item size factors
	// (all of an item's stage tasks scale together): Dedup items (file
	// chunks) vary a lot, Ferret items (images) barely.
	SizeCV float64
	// Noise is extra per-task noise on top of the item size factor.
	Noise float64
	// Seed seeds the generator.
	Seed uint64

	launched int
	r        *rng.Source
	engine   *sim.Engine
}

// Name implements sim.Workload.
func (w *Pipeline) Name() string { return w.BenchName }

func (w *Pipeline) defaults() {
	if w.WaveItems == 0 {
		w.WaveItems = 32
	}
	if w.Waves == 0 {
		w.Waves = 16
	}
	if w.Noise == 0 {
		w.Noise = DefaultNoise
	}
	if w.r == nil {
		w.r = rng.New(w.Seed ^ 0xD1B54A32D192ED03)
	}
}

func (w *Pipeline) factor(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	f := 1 + cv*w.r.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// injectWave releases one wave of items: every item's stage-0 task enters
// at once (the program hands the freshly read buffer to the pipeline).
func (w *Pipeline) injectWave() {
	for i := 0; i < w.WaveItems; i++ {
		size := w.factor(w.SizeCV)
		w.engine.Inject(w.stageTask(0, size))
	}
}

// stageTask builds one item's task for the given stage. Completion of a
// non-final stage injects the item's next stage at the completing core,
// so tasks of different stages overlap within a wave.
func (w *Pipeline) stageTask(stage int, size float64) *task.Task {
	sp := w.Stages[stage]
	t := task.New(sp.Name, sp.Work*size*w.factor(w.Noise))
	if stage+1 < len(w.Stages) {
		next := stage + 1
		t.OnComplete = func(done *task.Task) {
			w.engine.Inject(w.stageTask(next, size))
		}
	}
	return t
}

// Start implements sim.Workload: release the first wave.
func (w *Pipeline) Start(e *sim.Engine) {
	w.engine = e
	w.defaults()
	w.launched = 1
	w.injectWave()
}

// OnQuiescent implements sim.Workload: the pipeline drained; release the
// next wave, if any.
func (w *Pipeline) OnQuiescent(e *sim.Engine) bool {
	if w.launched >= w.Waves {
		return false
	}
	w.launched++
	w.injectWave()
	return true
}

var _ sim.Workload = (*Pipeline)(nil)

// WorkPerItem returns the expected (noise-free, unit-size) per-item work.
func (w *Pipeline) WorkPerItem() float64 {
	var s float64
	for _, st := range w.Stages {
		s += st.Work
	}
	return s
}

// Validate checks the stage specs.
func (w *Pipeline) Validate() error {
	if len(w.Stages) == 0 {
		return fmt.Errorf("pipeline %q: no stages", w.BenchName)
	}
	for _, s := range w.Stages {
		if s.Work < 0 {
			return fmt.Errorf("pipeline %q: negative work in stage %q", w.BenchName, s.Name)
		}
	}
	return nil
}
