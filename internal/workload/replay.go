package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wats/internal/sim"
	"wats/internal/task"
	"wats/internal/trace"
)

// Replay is a workload loaded from a task listing — the adoption path for
// users who want to evaluate schedulers against their own applications'
// task profiles. The format is CSV with a header:
//
//	batch,class,work[,memfrac[,cmpi]]
//
// where batch is a 0-based barrier group (all of batch b completes before
// b+1 starts, as in the Table III harness), class is the function name,
// work is fastest-core seconds, and the optional memfrac/cmpi columns
// mark memory-bound tasks (§IV-E).
type Replay struct {
	// TraceName labels the workload in results.
	TraceName string
	// Batches holds the parsed tasks per barrier group.
	Batches [][]ReplayTask
	// SpawnGap is the root task's serial spawn cost per task (default
	// 1e-5, as in Batch).
	SpawnGap float64

	launched int
}

// ReplayTask is one parsed task record.
type ReplayTask struct {
	Class   string
	Work    float64
	MemFrac float64
	CMPI    float64
}

// ParseReplay parses the CSV task listing described on Replay.
func ParseReplay(name, data string) (*Replay, error) {
	r := &Replay{TraceName: name}
	lines := strings.Split(strings.ReplaceAll(data, "\r\n", "\n"), "\n")
	start := 0
	if len(lines) > 0 && strings.HasPrefix(strings.ToLower(lines[0]), "batch,") {
		start = 1
	}
	for ln := start; ln < len(lines); ln++ {
		line := strings.TrimSpace(lines[ln])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("workload: replay line %d: want batch,class,work[,memfrac[,cmpi]]", ln+1)
		}
		batch, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || batch < 0 {
			return nil, fmt.Errorf("workload: replay line %d: bad batch %q", ln+1, fields[0])
		}
		work, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || work < 0 {
			return nil, fmt.Errorf("workload: replay line %d: bad work %q", ln+1, fields[2])
		}
		t := ReplayTask{Class: strings.TrimSpace(fields[1]), Work: work}
		if t.Class == "" {
			return nil, fmt.Errorf("workload: replay line %d: empty class", ln+1)
		}
		if len(fields) > 3 {
			if t.MemFrac, err = strconv.ParseFloat(strings.TrimSpace(fields[3]), 64); err != nil {
				return nil, fmt.Errorf("workload: replay line %d: bad memfrac", ln+1)
			}
			if t.MemFrac < 0 || t.MemFrac > 1 {
				return nil, fmt.Errorf("workload: replay line %d: memfrac %v out of [0,1]", ln+1, t.MemFrac)
			}
		}
		if len(fields) > 4 {
			if t.CMPI, err = strconv.ParseFloat(strings.TrimSpace(fields[4]), 64); err != nil {
				return nil, fmt.Errorf("workload: replay line %d: bad cmpi", ln+1)
			}
		}
		for batch >= len(r.Batches) {
			r.Batches = append(r.Batches, nil)
		}
		r.Batches[batch] = append(r.Batches[batch], t)
	}
	if len(r.Batches) == 0 {
		return nil, fmt.Errorf("workload: replay %q has no tasks", name)
	}
	for b, tasks := range r.Batches {
		if len(tasks) == 0 {
			return nil, fmt.Errorf("workload: replay %q: batch %d is empty", name, b)
		}
	}
	return r, nil
}

// Name implements sim.Workload.
func (r *Replay) Name() string { return r.TraceName }

func (r *Replay) inject(e *sim.Engine, batch int) {
	gap := r.SpawnGap
	if gap == 0 {
		gap = 1e-5
	}
	tasks := r.Batches[batch]
	root := task.New("main", float64(len(tasks))*gap)
	root.Main = true
	for i, rt := range tasks {
		leaf := task.New(rt.Class, rt.Work)
		leaf.MemFrac = rt.MemFrac
		leaf.CMPI = rt.CMPI
		root.Spawns = append(root.Spawns, task.Spawn{At: float64(i) * gap, Child: leaf})
	}
	e.Inject(root)
}

// Start implements sim.Workload.
func (r *Replay) Start(e *sim.Engine) {
	r.launched = 1
	r.inject(e, 0)
}

// OnQuiescent implements sim.Workload.
func (r *Replay) OnQuiescent(e *sim.Engine) bool {
	if r.launched >= len(r.Batches) {
		return false
	}
	b := r.launched
	r.launched++
	r.inject(e, b)
	return true
}

// TotalTasks returns the number of leaf tasks across all batches.
func (r *Replay) TotalTasks() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b)
	}
	return n
}

var _ sim.Workload = (*Replay)(nil)

// Arrival is one open-loop task arrival: a class instance of a measured
// workload arriving At seconds into the trace. It is the arrival-time-
// faithful counterpart of ReplayTask — where Replay batches tasks behind
// barriers, OpenLoop reproduces the live service's arrival process.
type Arrival struct {
	At      float64
	Class   string
	Work    float64
	MemFrac float64
	CMPI    float64
}

// OpenLoop replays a recorded arrival process in the simulator: every
// arrival is scheduled at its original offset via Engine.InjectAt, so the
// simulated machine sees the same per-class work and the same bursts and
// lulls the live service saw, independent of how fast the simulated
// policy drains them (an open loop, like cmd/watsload). A fresh OpenLoop
// is single-use: the engine mutates the tasks it builds.
type OpenLoop struct {
	// TraceName labels the workload in results.
	TraceName string
	// Arrivals is the arrival process, sorted by At in Start.
	Arrivals []Arrival

	// arriveAt remembers each constructed task's arrival offset so
	// sojourn times (completion minus arrival) can be computed from
	// Result.Completed without touching task.Task.
	arriveAt map[*task.Task]float64
}

// Name implements sim.Workload.
func (o *OpenLoop) Name() string { return o.TraceName }

// Start implements sim.Workload: register every arrival with the engine.
func (o *OpenLoop) Start(e *sim.Engine) {
	sort.SliceStable(o.Arrivals, func(i, j int) bool { return o.Arrivals[i].At < o.Arrivals[j].At })
	o.arriveAt = make(map[*task.Task]float64, len(o.Arrivals))
	for _, a := range o.Arrivals {
		t := task.New(a.Class, a.Work)
		t.MemFrac = a.MemFrac
		t.CMPI = a.CMPI
		o.arriveAt[t] = a.At
		e.InjectAt(a.At, t)
	}
}

// OnQuiescent implements sim.Workload: the run is over only when no
// arrival is still pending (draining between bursts is normal).
func (o *OpenLoop) OnQuiescent(e *sim.Engine) bool { return e.PendingArrivals() > 0 }

// ArrivalOf returns the arrival offset of a task built by Start.
func (o *OpenLoop) ArrivalOf(t *task.Task) (float64, bool) {
	at, ok := o.arriveAt[t]
	return at, ok
}

// Sojourns maps completed tasks (Result.Completed under
// Config.CollectTasks) to their sojourn times — completion minus arrival,
// the simulated counterpart of the live service's job latency. Tasks not
// built by this workload (policy-internal spawns) are skipped.
func (o *OpenLoop) Sojourns(completed []*task.Task) []float64 {
	out := make([]float64, 0, len(completed))
	for _, t := range completed {
		if at, ok := o.arriveAt[t]; ok && t.EndT >= at {
			out = append(out, t.EndT-at)
		}
	}
	return out
}

var _ sim.Workload = (*OpenLoop)(nil)

// FromCapture converts a parsed live capture (trace.ParseCaptureFile)
// into an open-loop workload: decisions joined with their task ends by
// ledger ID, arrival offsets taken from decision timestamps (rebased to
// the first decision), work taken from the end records' Eq.2-normalized
// execution times. Cancelled and unmatched records are skipped and
// counted. Live spawn trees arrive flattened: a worker-side child spawn
// becomes an independent arrival at its decision time, which loses the
// parent-child edge but preserves per-class work and timing — the
// approximation the twin's fidelity line quantifies.
func FromCapture(name string, c *trace.Captured) (*OpenLoop, int, error) {
	if len(c.Decisions) == 0 {
		return nil, 0, fmt.Errorf("workload: capture %q has no decision records", name)
	}
	ends := make(map[uint64]*trace.TaskEnd, len(c.Ends))
	for i := range c.Ends {
		ends[c.Ends[i].ID] = &c.Ends[i]
	}
	t0 := c.Decisions[0].TS
	for _, d := range c.Decisions {
		if d.TS < t0 {
			t0 = d.TS
		}
	}
	o := &OpenLoop{TraceName: name}
	skipped := 0
	matched := make(map[uint64]bool, len(c.Decisions))
	for _, d := range c.Decisions {
		end, ok := ends[d.ID]
		if ok {
			matched[d.ID] = true
		}
		if !ok || end.Cancelled {
			skipped++
			continue
		}
		o.Arrivals = append(o.Arrivals, Arrival{
			At:    float64(d.TS-t0) / 1e9,
			Class: d.Class,
			Work:  float64(end.Work) / 1e9,
		})
	}
	// Ends with no decision (records lost to capture-buffer drops) are
	// skipped too: there is no arrival time to replay them at.
	for id := range ends {
		if !matched[id] {
			skipped++
		}
	}
	if len(o.Arrivals) == 0 {
		return nil, skipped, fmt.Errorf("workload: capture %q has no completed tasks (%d skipped)", name, skipped)
	}
	return o, skipped, nil
}
