package workload

import (
	"fmt"
	"strconv"
	"strings"

	"wats/internal/sim"
	"wats/internal/task"
)

// Replay is a workload loaded from a task listing — the adoption path for
// users who want to evaluate schedulers against their own applications'
// task profiles. The format is CSV with a header:
//
//	batch,class,work[,memfrac[,cmpi]]
//
// where batch is a 0-based barrier group (all of batch b completes before
// b+1 starts, as in the Table III harness), class is the function name,
// work is fastest-core seconds, and the optional memfrac/cmpi columns
// mark memory-bound tasks (§IV-E).
type Replay struct {
	// TraceName labels the workload in results.
	TraceName string
	// Batches holds the parsed tasks per barrier group.
	Batches [][]ReplayTask
	// SpawnGap is the root task's serial spawn cost per task (default
	// 1e-5, as in Batch).
	SpawnGap float64

	launched int
}

// ReplayTask is one parsed task record.
type ReplayTask struct {
	Class   string
	Work    float64
	MemFrac float64
	CMPI    float64
}

// ParseReplay parses the CSV task listing described on Replay.
func ParseReplay(name, data string) (*Replay, error) {
	r := &Replay{TraceName: name}
	lines := strings.Split(strings.ReplaceAll(data, "\r\n", "\n"), "\n")
	start := 0
	if len(lines) > 0 && strings.HasPrefix(strings.ToLower(lines[0]), "batch,") {
		start = 1
	}
	for ln := start; ln < len(lines); ln++ {
		line := strings.TrimSpace(lines[ln])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("workload: replay line %d: want batch,class,work[,memfrac[,cmpi]]", ln+1)
		}
		batch, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || batch < 0 {
			return nil, fmt.Errorf("workload: replay line %d: bad batch %q", ln+1, fields[0])
		}
		work, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || work < 0 {
			return nil, fmt.Errorf("workload: replay line %d: bad work %q", ln+1, fields[2])
		}
		t := ReplayTask{Class: strings.TrimSpace(fields[1]), Work: work}
		if t.Class == "" {
			return nil, fmt.Errorf("workload: replay line %d: empty class", ln+1)
		}
		if len(fields) > 3 {
			if t.MemFrac, err = strconv.ParseFloat(strings.TrimSpace(fields[3]), 64); err != nil {
				return nil, fmt.Errorf("workload: replay line %d: bad memfrac", ln+1)
			}
			if t.MemFrac < 0 || t.MemFrac > 1 {
				return nil, fmt.Errorf("workload: replay line %d: memfrac %v out of [0,1]", ln+1, t.MemFrac)
			}
		}
		if len(fields) > 4 {
			if t.CMPI, err = strconv.ParseFloat(strings.TrimSpace(fields[4]), 64); err != nil {
				return nil, fmt.Errorf("workload: replay line %d: bad cmpi", ln+1)
			}
		}
		for batch >= len(r.Batches) {
			r.Batches = append(r.Batches, nil)
		}
		r.Batches[batch] = append(r.Batches[batch], t)
	}
	if len(r.Batches) == 0 {
		return nil, fmt.Errorf("workload: replay %q has no tasks", name)
	}
	for b, tasks := range r.Batches {
		if len(tasks) == 0 {
			return nil, fmt.Errorf("workload: replay %q: batch %d is empty", name, b)
		}
	}
	return r, nil
}

// Name implements sim.Workload.
func (r *Replay) Name() string { return r.TraceName }

func (r *Replay) inject(e *sim.Engine, batch int) {
	gap := r.SpawnGap
	if gap == 0 {
		gap = 1e-5
	}
	tasks := r.Batches[batch]
	root := task.New("main", float64(len(tasks))*gap)
	root.Main = true
	for i, rt := range tasks {
		leaf := task.New(rt.Class, rt.Work)
		leaf.MemFrac = rt.MemFrac
		leaf.CMPI = rt.CMPI
		root.Spawns = append(root.Spawns, task.Spawn{At: float64(i) * gap, Child: leaf})
	}
	e.Inject(root)
}

// Start implements sim.Workload.
func (r *Replay) Start(e *sim.Engine) {
	r.launched = 1
	r.inject(e, 0)
}

// OnQuiescent implements sim.Workload.
func (r *Replay) OnQuiescent(e *sim.Engine) bool {
	if r.launched >= len(r.Batches) {
		return false
	}
	b := r.launched
	r.launched++
	r.inject(e, b)
	return true
}

// TotalTasks returns the number of leaf tasks across all batches.
func (r *Replay) TotalTasks() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b)
	}
	return n
}

var _ sim.Workload = (*Replay)(nil)
