package workload

import (
	"wats/internal/rng"
	"wats/internal/sim"
	"wats/internal/task"
)

// DivideConquer is a recursive divide-and-conquer workload (the paper's
// §IV-E limitation: programs like nqueens where every task runs the same
// function, so the history finds a single class that cannot be spread
// across c-groups). Each node spawns two children of half depth; leaves
// carry the work.
type DivideConquer struct {
	// Depth of the binary spawn tree; 2^Depth leaves.
	Depth int
	// LeafWork is each leaf's work in fastest-core seconds.
	LeafWork float64
	// NodeWork is the internal nodes' own (split/merge) work.
	NodeWork float64
	// Noise is the per-task CV.
	Noise float64
	// Seed seeds the generator.
	Seed uint64

	r *rng.Source
}

// Name implements sim.Workload.
func (w *DivideConquer) Name() string { return "DnC" }

func (w *DivideConquer) jitter() float64 {
	if w.Noise <= 0 {
		return 1
	}
	f := 1 + w.Noise*w.r.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return f
}

func (w *DivideConquer) build(depth int) *task.Task {
	if depth == 0 {
		return task.New("dnc", w.LeafWork*w.jitter())
	}
	node := task.New("dnc", w.NodeWork*w.jitter())
	mid := node.Work / 2
	node.Spawns = []task.Spawn{
		{At: mid, Child: w.build(depth - 1)},
		{At: mid, Child: w.build(depth - 1)},
	}
	return node
}

// Start implements sim.Workload.
func (w *DivideConquer) Start(e *sim.Engine) {
	if w.r == nil {
		w.r = rng.New(w.Seed ^ 0xA24BAED4963EE407)
	}
	if w.LeafWork == 0 {
		w.LeafWork = BaseT
	}
	if w.NodeWork == 0 {
		w.NodeWork = BaseT / 10
	}
	e.Inject(w.build(w.Depth))
}

// OnQuiescent implements sim.Workload.
func (w *DivideConquer) OnQuiescent(e *sim.Engine) bool { return false }

// PhaseChange returns a GA-like batch workload whose class workloads swap
// abruptly halfway through the run: the classes that were heavy become
// light and vice versa. It exercises the "timely update" property of
// §III-A — the helper thread must re-learn the pattern within the new
// phase.
func PhaseChange(batches int, seed uint64) *Batch {
	t := BaseT
	heavy := []ClassSpec{
		{Name: "ph_a", Count: 8, Work: 8 * t},
		{Name: "ph_b", Count: 120, Work: 1 * t},
	}
	light := []ClassSpec{
		{Name: "ph_a", Count: 8, Work: 1 * t},
		{Name: "ph_b", Count: 120, Work: 8 * t},
	}
	w := &Batch{
		BenchName: "PhaseChange",
		Mix:       heavy,
		Batches:   batches,
		Seed:      seed,
	}
	w.OnBatchStart = func(b int, bw *Batch) {
		if b >= batches/2 {
			bw.Mix = light
		} else {
			bw.Mix = heavy
		}
	}
	return w
}

// Uniform returns a batch workload where every task has the same class and
// workload — the degenerate case where history-based allocation has
// nothing to exploit and WATS should match PFT up to bookkeeping overhead.
func Uniform(tasks, batches int, work float64, seed uint64) *Batch {
	return &Batch{
		BenchName: "Uniform",
		Mix:       []ClassSpec{{Name: "uni", Count: tasks, Work: work}},
		Batches:   batches,
		Seed:      seed,
	}
}

// MixedMemory returns the §IV-E scenario: a batch mixing CPU-bound
// classes (which gain the full speedup on fast cores) with memory-bound
// classes (whose time is dominated by stalls and barely improves on fast
// cores). A CMPI-blind scheduler wastes fast-core capacity on stalls;
// the memory-aware variant routes the memory-bound classes to slow cores.
func MixedMemory(seed uint64) *Batch {
	t := BaseT
	return &Batch{BenchName: "MixedMem", Seed: seed, Mix: []ClassSpec{
		{Name: "cpu_solve", Count: 8, Work: 8 * t},
		{Name: "cpu_pack", Count: 16, Work: 4 * t},
		{Name: "cpu_small", Count: 40, Work: 1 * t},
		{Name: "mem_scan", Count: 32, Work: 3 * t, MemFrac: 0.85, CMPI: 0.2},
		{Name: "mem_chase", Count: 32, Work: 2 * t, MemFrac: 0.9, CMPI: 0.3},
	}}
}

// TwoClass returns the minimal workload that distinguishes workload-aware
// from random scheduling: a few huge tasks and many tiny ones, as in the
// motivating example of §II-A.
func TwoClass(big, small int, bigWork, smallWork float64, batches int, seed uint64) *Batch {
	return &Batch{
		BenchName: "TwoClass",
		Mix: []ClassSpec{
			{Name: "big", Count: big, Work: bigWork},
			{Name: "small", Count: small, Work: smallWork},
		},
		Batches: batches,
		Seed:    seed,
	}
}
