package workload

import (
	"math"
	"testing"

	"wats/internal/amc"
	"wats/internal/sim"
	"wats/internal/task"
)

// fifoPolicy is a minimal policy for driving workloads in tests.
type fifoPolicy struct {
	pools *sim.PoolSet
	e     *sim.Engine
}

func (p *fifoPolicy) Name() string     { return "fifo" }
func (p *fifoPolicy) ChildFirst() bool { return false }
func (p *fifoPolicy) Init(e *sim.Engine) {
	p.e = e
	p.pools = sim.NewPoolSet(e, 1)
}
func (p *fifoPolicy) Inject(o *sim.Core, t *task.Task) { p.pools.Push(o.ID, 0, t) }
func (p *fifoPolicy) Enqueue(c *sim.Core, t *task.Task) {
	p.pools.Push(c.ID, 0, t)
}
func (p *fifoPolicy) OnComplete(c *sim.Core, t *task.Task) {}
func (p *fifoPolicy) OnHelperTick(e *sim.Engine)           {}
func (p *fifoPolicy) Acquire(c *sim.Core) (*task.Task, float64) {
	if t := p.pools.PopBottom(c.ID, 0); t != nil {
		return t, 0
	}
	if t := p.pools.StealRandom(c, 0); t != nil {
		return t, 0
	}
	return nil, 0
}

func runWorkload(t *testing.T, w sim.Workload) *sim.Result {
	t.Helper()
	res, err := sim.New(amc.AMC2, &fifoPolicy{}, sim.Config{Seed: 1, CollectTasks: true}).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEveryBenchmarkBatchHas128Tasks(t *testing.T) {
	for _, name := range BenchmarkNames {
		w := ByName(name, 1)
		if w == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
		if b, ok := w.(*Batch); ok {
			if got := b.TasksPerBatch(); got != 128 {
				t.Errorf("%s: %d tasks per batch, want 128", name, got)
			}
			if err := b.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
	if ByName("nothing", 1) != nil {
		t.Error("unknown benchmark returned a workload")
	}
}

func TestBatchRunsAllBatches(t *testing.T) {
	w := GA(3)
	w.Batches = 3
	res := runWorkload(t, w)
	want := 3 * (128 + 1) // leaves + root per batch
	if res.TasksDone != want {
		t.Fatalf("TasksDone=%d want %d", res.TasksDone, want)
	}
}

func TestBatchNoiseControls(t *testing.T) {
	// Noise < 0 produces exactly the specified workloads.
	w := &Batch{BenchName: "x", Batches: 1, Noise: -1, Seed: 1,
		Mix: []ClassSpec{{Name: "a", Count: 10, Work: 0.02}}}
	res := runWorkload(t, w)
	for _, tk := range res.Completed {
		if tk.Class == "a" && tk.Work != 0.02 {
			t.Fatalf("noise-free task has work %v", tk.Work)
		}
	}
	// Default noise produces small variation around the mean.
	w2 := &Batch{BenchName: "x", Batches: 2, Seed: 2,
		Mix: []ClassSpec{{Name: "a", Count: 100, Work: 0.02}}}
	res2 := runWorkload(t, w2)
	tr := res2.Truth["a"]
	if math.Abs(tr.TrueMean-0.02)/0.02 > 0.05 {
		t.Fatalf("noisy mean %v too far from 0.02", tr.TrueMean)
	}
}

func TestBatchSpawnOrder(t *testing.T) {
	for _, order := range []SpawnOrder{OrderLightFirst, OrderHeavyFirst} {
		w := &Batch{BenchName: "x", Batches: 1, Seed: 3, Noise: -1, Order: order,
			Mix: []ClassSpec{
				{Name: "big", Count: 3, Work: 0.05},
				{Name: "small", Count: 3, Work: 0.01},
			}}
		w.defaults()
		root := w.buildBatch(0)
		prev := root.Spawns[0].Child.Work
		for _, sp := range root.Spawns[1:] {
			if order == OrderLightFirst && sp.Child.Work < prev-1e-12 {
				t.Fatalf("light-first order violated")
			}
			if order == OrderHeavyFirst && sp.Child.Work > prev+1e-12 {
				t.Fatalf("heavy-first order violated")
			}
			prev = sp.Child.Work
		}
	}
}

func TestGAAlphaMix(t *testing.T) {
	for _, alpha := range []int{0, 8, 42} {
		mix, err := GAAlphaMix(alpha, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, c := range mix {
			n += c.Count
		}
		if n != 128 {
			t.Fatalf("alpha=%d: %d tasks", alpha, n)
		}
	}
	// α=44 clamps the light class at zero.
	mix, err := GAAlphaMix(44, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if mix[3].Count != 0 {
		t.Fatalf("alpha=44 light count=%d", mix[3].Count)
	}
	if _, err := GAAlphaMix(-1, 0.01); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := GAAlphaMix(45, 0.01); err == nil {
		t.Fatal("alpha=45 accepted")
	}
	if _, err := GAAlpha(50, 1); err == nil {
		t.Fatal("GAAlpha(50) accepted")
	}
}

func TestPipelineRunsAllStages(t *testing.T) {
	w := Ferret(4)
	w.WaveItems = 16
	w.Waves = 3
	res := runWorkload(t, w)
	want := 16 * 3 * 4 // items × waves × stages
	if res.TasksDone != want {
		t.Fatalf("TasksDone=%d want %d", res.TasksDone, want)
	}
	// Every stage class appears.
	for _, st := range w.Stages {
		if _, ok := res.Truth[st.Name]; !ok {
			t.Fatalf("stage %s never ran", st.Name)
		}
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.WorkPerItem() <= 0 {
		t.Fatal("WorkPerItem")
	}
}

func TestPipelineStagesChainInOrder(t *testing.T) {
	w := Ferret(5)
	w.WaveItems = 4
	w.Waves = 1
	res := runWorkload(t, w)
	// Stage k tasks cannot start before any stage k-1 task has finished
	// for the same item; weaker global check: the first segment of stage
	// i+1 starts after the first completion of stage i.
	firstEnd := map[string]float64{}
	firstStart := map[string]float64{}
	for _, tk := range res.Completed {
		if _, ok := firstEnd[tk.Class]; !ok || tk.EndT < firstEnd[tk.Class] {
			firstEnd[tk.Class] = tk.EndT
		}
		if _, ok := firstStart[tk.Class]; !ok || tk.StartT < firstStart[tk.Class] {
			firstStart[tk.Class] = tk.StartT
		}
	}
	for i := 1; i < len(w.Stages); i++ {
		prev, cur := w.Stages[i-1].Name, w.Stages[i].Name
		if firstStart[cur] < firstEnd[prev]-1e-9 {
			t.Fatalf("stage %s started before %s finished", cur, prev)
		}
	}
}

func TestDivideConquer(t *testing.T) {
	w := &DivideConquer{Depth: 5, LeafWork: 0.005, NodeWork: 0.001, Seed: 6}
	res := runWorkload(t, w)
	want := 1<<6 - 1 // full binary tree of depth 5
	if res.TasksDone != want {
		t.Fatalf("TasksDone=%d want %d", res.TasksDone, want)
	}
	if len(res.Truth) != 1 {
		t.Fatalf("divide-and-conquer should have one class, got %d", len(res.Truth))
	}
}

func TestPhaseChangeFlipsMix(t *testing.T) {
	w := PhaseChange(4, 7)
	res := runWorkload(t, w)
	if res.TasksDone != 4*129 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
	// Both classes were heavy in one phase and light in the other, so
	// their overall means sit between the extremes.
	a := res.Truth["ph_a"]
	if a.TrueMean < 0.011 || a.TrueMean > 0.079 {
		t.Fatalf("ph_a mean %v does not reflect a phase flip", a.TrueMean)
	}
}

func TestUniformAndTwoClass(t *testing.T) {
	u := Uniform(32, 2, 0.01, 8)
	res := runWorkload(t, u)
	if res.TasksDone != 2*33 {
		t.Fatalf("uniform TasksDone=%d", res.TasksDone)
	}
	tc := TwoClass(2, 30, 0.08, 0.01, 2, 9)
	res2 := runWorkload(t, tc)
	if res2.Truth["big"].Count != 4 || res2.Truth["small"].Count != 60 {
		t.Fatalf("two-class counts: %+v", res2.Truth)
	}
}

func TestBenchmarksList(t *testing.T) {
	ws := Benchmarks(1)
	if len(ws) != 9 {
		t.Fatalf("Benchmarks returned %d", len(ws))
	}
	for i, w := range ws {
		if w.Name() != BenchmarkNames[i] {
			t.Fatalf("order mismatch: %s vs %s", w.Name(), BenchmarkNames[i])
		}
	}
}

func TestMixedMemoryWorkload(t *testing.T) {
	w := MixedMemory(5)
	w.Batches = 2
	if w.TasksPerBatch() != 128 {
		t.Fatalf("tasks per batch %d", w.TasksPerBatch())
	}
	res := runWorkload(t, w)
	if res.TasksDone != 2*129 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
	// Memory-bound tasks carry their MemFrac/CMPI through to execution.
	memSeen := false
	for _, tk := range res.Completed {
		if tk.Class == "mem_chase" {
			memSeen = true
			if tk.MemFrac != 0.9 || tk.CMPI != 0.3 {
				t.Fatalf("mem task lost attributes: %+v", tk)
			}
		}
	}
	if !memSeen {
		t.Fatal("no mem_chase tasks")
	}
}

func TestReplayParse(t *testing.T) {
	csv := `batch,class,work,memfrac,cmpi
0,hash,0.01
0,compress,0.05,0,0
0,scan,0.02,0.9,0.25
1,hash,0.01
# comment line

1,compress,0.04`
	r, err := ParseReplay("mytrace", csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Batches) != 2 || len(r.Batches[0]) != 3 || len(r.Batches[1]) != 2 {
		t.Fatalf("batches: %+v", r.Batches)
	}
	if r.Batches[0][2].MemFrac != 0.9 || r.Batches[0][2].CMPI != 0.25 {
		t.Fatalf("mem columns: %+v", r.Batches[0][2])
	}
	if r.TotalTasks() != 5 {
		t.Fatalf("TotalTasks=%d", r.TotalTasks())
	}
	res := runWorkload(t, r)
	if res.TasksDone != 5+2 { // leaves + 2 roots
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
	if _, ok := res.Truth["scan"]; !ok {
		t.Fatal("scan class missing")
	}
}

func TestReplayParseErrors(t *testing.T) {
	cases := []string{
		"",                   // no tasks
		"0,onlytwo",          // too few fields
		"x,hash,0.01",        // bad batch
		"-1,hash,0.01",       // negative batch
		"0,hash,zz",          // bad work
		"0,,0.01",            // empty class
		"0,hash,0.01,2",      // memfrac out of range
		"0,hash,0.01,0.5,xx", // bad cmpi
		"2,hash,0.01",        // batches 0 and 1 empty
	}
	for _, c := range cases {
		if _, err := ParseReplay("bad", c); err == nil {
			t.Fatalf("accepted invalid trace %q", c)
		}
	}
}
