# Fig. 10 — snatching ablation, normalized to WATS (AMC 2).
#   go run ./cmd/watsbench -experiment fig10 -seeds 10 -out out
#   gnuplot -e "datafile='out/fig10.dat.csv'" plots/fig10.plt
set datafile separator ","
set terminal pngcairo size 800,450
set output datafile.".png"
set style data histogram
set style histogram errorbars gap 2 lw 1
set style fill solid 0.85 border -1
set ylabel "Normalized execution time (WATS = 1)"
set yrange [0:1.4]
set key top right
set xtics rotate by -30
plot datafile using 2:3:xtic(1) title "WATS", \
     ''       using 4:5 title "WATS-TS"
