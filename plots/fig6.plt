# Fig. 6 — normalized execution time per benchmark (one panel per AMC).
# Generate data first:
#   go run ./cmd/watsbench -experiment fig6 -seeds 10 -out out
# then:
#   gnuplot -e "datafile='out/fig6.dat.csv'" plots/fig6.plt
set datafile separator ","
set terminal pngcairo size 900,500
set output datafile.".png"
set style data histogram
set style histogram errorbars gap 2 lw 1
set style fill solid 0.85 border -1
set boxwidth 0.9
set ylabel "Normalized execution time (Cilk = 1)"
set yrange [0:1.4]
set key top right
set xtics rotate by -30
plot datafile using 2:3:xtic(1) title "Cilk", \
     ''       using 4:5 title "PFT", \
     ''       using 6:7 title "RTS", \
     ''       using 8:9 title "WATS"
