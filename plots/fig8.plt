# Fig. 8 — GA under the alpha-parameterized workload distribution (AMC 5).
#   go run ./cmd/watsbench -experiment fig8 -seeds 10 -out out
#   gnuplot -e "datafile='out/fig8.dat.csv'" plots/fig8.plt
set datafile separator ","
set terminal pngcairo size 800,500
set output datafile.".png"
set xlabel "Workload-set parameter alpha"
set ylabel "Execution time (s)"
set key top left
plot datafile using 1:2:3 with yerrorlines title "Cilk", \
     ''       using 1:4:5 with yerrorlines title "PFT", \
     ''       using 1:6:7 with yerrorlines title "RTS", \
     ''       using 1:8:9 with yerrorlines title "WATS"
