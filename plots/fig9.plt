# Fig. 9 — preference-stealing ablation (GA on all architectures).
#   go run ./cmd/watsbench -experiment fig9 -seeds 10 -out out
#   gnuplot -e "datafile='out/fig9.dat.csv'" plots/fig9.plt
set datafile separator ","
set terminal pngcairo size 800,500
set output datafile.".png"
set style data histogram
set style histogram errorbars gap 2 lw 1
set style fill solid 0.85 border -1
set ylabel "Execution time (s)"
set key top right
plot datafile using 2:3:xtic(1) title "Cilk", \
     ''       using 4:5 title "PFT", \
     ''       using 6:7 title "WATS-NP", \
     ''       using 8:9 title "WATS"
