package wats_test

import (
	"testing"

	"wats"
	"wats/internal/amc"
	"wats/internal/experiments"
)

// TestReproductionHeadlines is the canonical "does this repository
// reproduce the paper" test: it runs scaled-down versions of the main
// figures (2 seeds, fewer batches) and asserts every qualitative claim
// the paper's evaluation makes. EXPERIMENTS.md records the full-size
// numbers; this test keeps the shapes from regressing.
func TestReproductionHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction test is not -short")
	}
	o := experiments.Options{Seeds: []uint64{1, 2}, Batches: 6}

	// --- Fig. 6 on AMC 2: WATS wins every CPU-bound benchmark, Ferret
	// is neutral, RTS sits between Cilk and WATS.
	grids, err := experiments.Fig6(o, amc.AMC2)
	if err != nil {
		t.Fatal(err)
	}
	g := grids[0]
	for _, bench := range g.RowLabel {
		watsC, _ := g.At(bench, "WATS")
		rtsC, _ := g.At(bench, "RTS")
		if bench == "Ferret" {
			if watsC.Mean < 0.90 || watsC.Mean > 1.08 {
				t.Errorf("Ferret should be neutral for WATS, got %.3f", watsC.Mean)
			}
			continue
		}
		if watsC.Mean >= 0.90 {
			t.Errorf("%s: WATS %.3f not clearly below Cilk", bench, watsC.Mean)
		}
		if watsC.Mean >= rtsC.Mean+0.03 {
			t.Errorf("%s: WATS (%.3f) clearly behind RTS (%.3f)", bench, watsC.Mean, rtsC.Mean)
		}
	}

	// --- Fig. 7: WATS monotone-ish in fast cores; all equal on AMC 7.
	g7, err := experiments.Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	w3, _ := g7.At("AMC 3", "WATS")
	w5, _ := g7.At("AMC 5", "WATS")
	w7, _ := g7.At("AMC 7", "WATS")
	if !(w3.Mean > w5.Mean && w5.Mean > w7.Mean) {
		t.Errorf("WATS not improving with fast cores: AMC3 %.2f, AMC5 %.2f, AMC7 %.2f",
			w3.Mean, w5.Mean, w7.Mean)
	}
	c7, _ := g7.At("AMC 7", "Cilk")
	if rel := (w7.Mean - c7.Mean) / c7.Mean; rel > 0.05 || rel < -0.05 {
		t.Errorf("AMC 7 symmetric: WATS %.2f vs Cilk %.2f", w7.Mean, c7.Mean)
	}

	// --- Fig. 9: preference stealing is effective on every asymmetric
	// architecture.
	g9, err := experiments.Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"AMC 1", "AMC 2", "AMC 4", "AMC 5"} {
		np, _ := g9.At(arch, "WATS-NP")
		full, _ := g9.At(arch, "WATS")
		if full.Mean >= np.Mean {
			t.Errorf("%s: WATS (%.2f) not better than WATS-NP (%.2f)", arch, full.Mean, np.Mean)
		}
	}

	// --- Fig. 10: snatching does not pay once WATS has balanced (mean
	// over benchmarks ≥ ~1).
	g10, err := experiments.Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, bench := range g10.RowLabel {
		ts, _ := g10.At(bench, "WATS-TS")
		sum += ts.Mean
	}
	if mean := sum / float64(len(g10.RowLabel)); mean < 0.98 {
		t.Errorf("WATS-TS mean ratio %.3f — snatching should not clearly pay", mean)
	}
}

// TestReproductionMotivation pins the §II-A example end to end.
func TestReproductionMotivation(t *testing.T) {
	r, err := experiments.Motivation(experiments.Options{Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Simulated["WATS"] > 4.3 {
		t.Errorf("WATS per-batch %.2ft, want ≈ the optimal 4t", r.Simulated["WATS"])
	}
	if r.Simulated["Cilk"] < 6.0 {
		t.Errorf("Cilk per-batch %.2ft, want near the worst-case 8t", r.Simulated["Cilk"])
	}
}

// TestReproductionSHA1BestCase pins the headline best case: WATS vs Cilk
// on SHA-1/AMC 5 stays a large win.
func TestReproductionSHA1BestCase(t *testing.T) {
	var cilk, watsMS float64
	for seed := uint64(1); seed <= 2; seed++ {
		for _, kind := range []wats.Kind{wats.Cilk, wats.WATS} {
			w := wats.SHA1(seed)
			w.Batches = 10
			res, err := wats.Simulate(wats.AMC5, kind, w, wats.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if kind == wats.Cilk {
				cilk += res.Makespan
			} else {
				watsMS += res.Makespan
			}
		}
	}
	if ratio := watsMS / cilk; ratio > 0.55 {
		t.Errorf("SHA-1/AMC5 WATS/Cilk = %.3f, want < 0.55 (paper's flagship case)", ratio)
	}
}
