package wats_test

import (
	"testing"

	"wats"
)

// TestSmokeAllPolicies runs every policy on GA/AMC2 and checks basic
// sanity: all tasks complete, makespan is at least the Lemma 1 bound, and
// WATS beats the random schedulers on this skewed workload.
func TestSmokeAllPolicies(t *testing.T) {
	kinds := []wats.Kind{wats.Cilk, wats.PFT, wats.RTS, wats.WATS, wats.WATSNP, wats.WATSTS}
	makespans := map[wats.Kind]float64{}
	for _, k := range kinds {
		res, err := wats.Simulate(wats.AMC2, k, wats.GA(7), wats.Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		t.Logf("%s", res)
		if res.TasksDone == 0 {
			t.Fatalf("%s: no tasks completed", k)
		}
		if res.Makespan < res.LowerBound*(1-1e-9) {
			t.Fatalf("%s: makespan %g below lower bound %g", k, res.Makespan, res.LowerBound)
		}
		makespans[k] = res.Makespan
	}
	if makespans[wats.WATS] >= makespans[wats.Cilk] {
		t.Errorf("WATS (%g) should beat Cilk (%g) on skewed GA",
			makespans[wats.WATS], makespans[wats.Cilk])
	}
	if makespans[wats.WATS] >= makespans[wats.RTS] {
		t.Errorf("WATS (%g) should beat RTS (%g) on skewed GA",
			makespans[wats.WATS], makespans[wats.RTS])
	}
}
