// Package wats is a library reproduction of "WATS: Workload-Aware Task
// Scheduling in Asymmetric Multi-core Architectures" (Chen, Chen, Huang,
// Guo — IPDPS 2012).
//
// It provides:
//
//   - a model of asymmetric multi-core (AMC) architectures (c-groups of
//     cores at different speeds, including the paper's Table II presets);
//   - the WATS scheduler — history-based task allocation (Algorithms 1
//     and 2) plus preference-based task stealing (Algorithm 3) — and the
//     baselines it is evaluated against (MIT Cilk-style child-first random
//     stealing, parent-first stealing, and random task snatching);
//   - a deterministic discrete-event simulator that stands in for the
//     paper's DVFS-throttled 16-core Opteron testbed;
//   - a live goroutine-based runtime implementing the same policies on
//     real threads with emulated core speeds;
//   - workload models for the paper's nine benchmarks and the harnesses
//     that regenerate every table and figure of the evaluation.
//
// # Quick start
//
//	arch := wats.AMC2                      // 4×2.5 + 4×1.8 + 4×1.3 + 4×0.8 GHz
//	res, err := wats.Simulate(arch, wats.WATS, wats.GA(42), wats.Config{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(res)                        // makespan, utilization, steals...
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package wats

import (
	"io"

	"wats/internal/amc"
	"wats/internal/obs"
	liveruntime "wats/internal/runtime"
	"wats/internal/sched"
	"wats/internal/sim"
	"wats/internal/workload"
)

// Re-exported core types. The facade keeps downstream imports to a single
// package; advanced users may import the internal packages' wider APIs
// through the helpers below.
type (
	// Arch is an asymmetric multi-core architecture: k c-groups of cores,
	// each group running at its own speed.
	Arch = amc.Arch
	// CGroup is one group of same-speed cores.
	CGroup = amc.CGroup
	// Config carries the simulator's cost model and seed.
	Config = sim.Config
	// Result summarizes one simulated run.
	Result = sim.Result
	// Workload drives task creation during a run.
	Workload = sim.Workload
	// Policy is a pluggable scheduling policy.
	Policy = sim.Policy
	// Kind names one of the built-in scheduling policies.
	Kind = sched.Kind
	// BatchWorkload is a batch-based workload (Table III).
	BatchWorkload = workload.Batch
	// PipelineWorkload is a pipeline-based workload (Table III).
	PipelineWorkload = workload.Pipeline
	// ClassSpec describes one task class of a batch mix.
	ClassSpec = workload.ClassSpec
	// StageSpec describes one pipeline stage.
	StageSpec = workload.StageSpec
	// Strategy is one engine-agnostic scheduling policy: the spawn
	// discipline, task-to-pool allocation and acquisition order both the
	// simulator and the live runtime consume.
	Strategy = sched.Strategy
	// Runtime is the live goroutine-based scheduler: the same policy
	// kinds as the simulator, on real threads with emulated core speeds.
	Runtime = liveruntime.Runtime
	// RuntimeConfig configures a live Runtime (architecture, policy kind
	// or custom strategy, speed emulation, pool implementation).
	RuntimeConfig = liveruntime.Config
	// Ctx is the execution context a live task receives; it spawns
	// children and joins groups.
	Ctx = liveruntime.Ctx
	// Group joins a set of live tasks (help-first work-stealing join).
	Group = liveruntime.Group
	// WorkerStats reports one live worker's counters.
	WorkerStats = liveruntime.WorkerStats
	// Tracer records scheduler events and metrics for one engine run;
	// attach one through RuntimeConfig.Obs to turn tracing on.
	Tracer = obs.Tracer
	// TraceEvent is one recorded scheduler event (spawn, pop, steal,
	// snatch, complete, repartition).
	TraceEvent = obs.Event
	// TraceStream is one engine run's events for the Chrome exporter.
	TraceStream = obs.Stream
	// RuntimeSnapshot is a point-in-time introspection view of a live
	// Runtime: task classes, the c-group partition, preference tables
	// and deque depths.
	RuntimeSnapshot = liveruntime.Snapshot
)

// The built-in scheduling policies.
const (
	Cilk   = sched.KindCilk   // child-first spawning, random stealing
	PFT    = sched.KindPFT    // parent-first spawning, random stealing
	RTS    = sched.KindRTS    // Cilk + random task snatching
	WATS   = sched.KindWATS   // the paper's scheduler
	WATSNP = sched.KindWATSNP // WATS without cross-cluster stealing
	WATSTS = sched.KindWATSTS // WATS + workload-aware snatching
)

// Table II architecture presets (16 cores each; see DESIGN.md).
var (
	AMC1 = amc.AMC1
	AMC2 = amc.AMC2
	AMC3 = amc.AMC3
	AMC4 = amc.AMC4
	AMC5 = amc.AMC5
	AMC6 = amc.AMC6
	AMC7 = amc.AMC7
)

// TableII lists the presets in paper order.
var TableII = amc.TableII

// ErrShutdown is returned by Runtime.Spawn once Shutdown has begun.
var ErrShutdown = liveruntime.ErrShutdown

// NewArch builds a validated architecture from c-groups (any order;
// equal-speed groups are merged, order is normalized fastest-first).
func NewArch(name string, groups ...CGroup) (*Arch, error) {
	return amc.New(name, groups...)
}

// NewPolicy constructs a fresh instance of a built-in policy. Policies
// are single-use: construct a new one per Simulate call when driving the
// engine manually.
func NewPolicy(kind Kind) (Policy, error) { return sched.New(kind) }

// NewStrategy constructs the engine-agnostic strategy of a built-in
// policy kind — the single construction point the simulator and the live
// runtime share. Strategies are single-use: one per engine run.
func NewStrategy(kind Kind) (Strategy, error) { return sched.NewStrategy(kind) }

// NewRuntime starts a live goroutine-based scheduler: one worker per
// core of cfg.Arch, running the policy selected by cfg.Policy (any Kind;
// defaults to WATS) or a caller-configured cfg.Strategy.
//
//	rt, err := wats.NewRuntime(wats.RuntimeConfig{Arch: wats.AMC2, Policy: wats.WATS})
//	if err != nil { ... }
//	defer rt.Shutdown()
//	rt.Spawn("work", func(ctx *wats.Ctx) { ... })
//	rt.Wait()
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return liveruntime.New(cfg) }

// NewTracer returns a scheduler-event tracer for the given worker count.
// ringSize is the per-worker event capacity (0 = default). Pass the
// tracer as RuntimeConfig.Obs; a nil Obs keeps every tracing hook down
// to a single predictable branch.
func NewTracer(workers, ringSize int) *Tracer { return obs.NewTracer(workers, ringSize) }

// WriteChrome writes one or more event streams as a Chrome trace_event
// JSON document (load it in about://tracing or ui.perfetto.dev). Merge a
// live run with a simulated one by passing both streams.
func WriteChrome(w io.Writer, streams ...TraceStream) error { return obs.WriteChrome(w, streams...) }

// Simulate runs one workload under one policy on one architecture and
// returns the run's result. It is deterministic in cfg.Seed.
func Simulate(arch *Arch, kind Kind, w Workload, cfg Config) (*Result, error) {
	p, err := sched.New(kind)
	if err != nil {
		return nil, err
	}
	return sim.New(arch, p, cfg).Run(w)
}

// SimulatePolicy is Simulate with a caller-constructed policy (custom
// policies or configured WATS variants).
func SimulatePolicy(arch *Arch, p Policy, w Workload, cfg Config) (*Result, error) {
	return sim.New(arch, p, cfg).Run(w)
}

// Benchmark workloads of Table III.
var (
	// GA returns the island-model genetic algorithm workload (α=8).
	GA = workload.GA
	// BWT returns the Burrows-Wheeler transform workload.
	BWT = workload.BWT
	// Bzip2 returns the Bzip2-like compression workload.
	Bzip2 = workload.Bzip2
	// DMC returns the dynamic Markov coding workload.
	DMC = workload.DMC
	// LZW returns the Lempel-Ziv-Welch workload.
	LZW = workload.LZW
	// MD5 returns the message-digest workload.
	MD5 = workload.MD5
	// SHA1 returns the SHA-1 workload.
	SHA1 = workload.SHA1
	// Dedup returns the PARSEC Dedup pipeline workload.
	Dedup = workload.Dedup
	// Ferret returns the PARSEC Ferret pipeline workload.
	Ferret = workload.Ferret
	// GAAlpha returns the Fig. 8 GA workload for a given α.
	GAAlpha = workload.GAAlpha
	// Benchmarks returns all nine Table III workloads in figure order.
	Benchmarks = workload.Benchmarks
	// MixedMemory returns the §IV-E mixed CPU/memory-bound workload.
	MixedMemory = workload.MixedMemory
	// ParseReplay loads a workload from a CSV task trace
	// (batch,class,work[,memfrac[,cmpi]]).
	ParseReplay = workload.ParseReplay
)

// WATSMem is the §IV-E memory-aware WATS extension.
const WATSMem = sched.KindWATSMem
