package wats_test

import (
	"math"
	"testing"

	"wats"
	"wats/internal/sched"
)

func TestFacadeArchitectures(t *testing.T) {
	if len(wats.TableII) != 7 {
		t.Fatalf("TableII has %d entries", len(wats.TableII))
	}
	for _, a := range wats.TableII {
		if a.NumCores() != 16 {
			t.Fatalf("%s: %d cores", a.Name, a.NumCores())
		}
	}
	a, err := wats.NewArch("custom", wats.CGroup{Freq: 2, N: 1}, wats.CGroup{Freq: 1, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 2 || a.NumCores() != 4 {
		t.Fatalf("custom arch: %+v", a)
	}
	if _, err := wats.NewArch("bad"); err == nil {
		t.Fatal("empty arch accepted")
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, k := range []wats.Kind{wats.Cilk, wats.PFT, wats.RTS, wats.WATS, wats.WATSNP, wats.WATSTS} {
		p, err := wats.NewPolicy(k)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(k) {
			t.Fatalf("policy name %q != %q", p.Name(), k)
		}
	}
	if _, err := wats.NewPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFacadeWorkloadConstructors(t *testing.T) {
	mk := []func(uint64) interface{ Name() string }{
		func(s uint64) interface{ Name() string } { return wats.GA(s) },
		func(s uint64) interface{ Name() string } { return wats.BWT(s) },
		func(s uint64) interface{ Name() string } { return wats.Bzip2(s) },
		func(s uint64) interface{ Name() string } { return wats.DMC(s) },
		func(s uint64) interface{ Name() string } { return wats.LZW(s) },
		func(s uint64) interface{ Name() string } { return wats.MD5(s) },
		func(s uint64) interface{ Name() string } { return wats.SHA1(s) },
		func(s uint64) interface{ Name() string } { return wats.Dedup(s) },
		func(s uint64) interface{ Name() string } { return wats.Ferret(s) },
	}
	for _, f := range mk {
		if f(1).Name() == "" {
			t.Fatal("workload without a name")
		}
	}
	if len(wats.Benchmarks(1)) != 9 {
		t.Fatal("Benchmarks != 9")
	}
	if _, err := wats.GAAlpha(20, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	run := func() *wats.Result {
		w := wats.SHA1(5)
		w.Batches = 3
		res, err := wats.Simulate(wats.AMC5, wats.WATS, w, wats.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Steals != b.Steals || a.EnergyJoules != b.EnergyJoules {
		t.Fatalf("non-deterministic facade runs: %v vs %v", a, b)
	}
}

func TestSimulatePolicyWithConfiguredVariant(t *testing.T) {
	p := sched.NewWATS()
	p.EWMAAlpha = 0.5
	w := wats.GA(2)
	w.Batches = 2
	res, err := wats.SimulatePolicy(wats.AMC2, p, w, wats.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2*129 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
}

func TestCustomBatchWorkloadThroughFacade(t *testing.T) {
	w := &wats.BatchWorkload{
		BenchName: "custom",
		Batches:   2,
		Seed:      3,
		Mix: []wats.ClassSpec{
			{Name: "big", Count: 4, Work: 0.08},
			{Name: "small", Count: 60, Work: 0.005},
		},
	}
	res, err := wats.Simulate(wats.AMC5, wats.WATS, w, wats.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2*65 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
	if res.Makespan < res.LowerBound {
		t.Fatal("bound violated")
	}
}

func TestCustomPipelineWorkloadThroughFacade(t *testing.T) {
	w := &wats.PipelineWorkload{
		BenchName: "pipe",
		WaveItems: 8,
		Waves:     2,
		Seed:      4,
		Stages: []wats.StageSpec{
			{Name: "s1", Work: 0.01},
			{Name: "s2", Work: 0.02},
		},
	}
	res, err := wats.Simulate(wats.AMC2, wats.PFT, w, wats.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 8*2*2 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	w := wats.GA(6)
	w.Batches = 2
	res, err := wats.Simulate(wats.AMC1, wats.WATS, w, wats.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
	if g := res.OptimalityGap(); g < 0 || math.IsNaN(g) {
		t.Fatalf("gap %v", g)
	}
	if res.EnergyJoules <= 0 {
		t.Fatal("no energy")
	}
}

// TestGoldenDeterminism pins exact scheduler decisions for one seed: the
// simulator is specified to be bit-reproducible, so any change to these
// numbers means scheduling behaviour changed and EXPERIMENTS.md needs
// regeneration. (Task counts and steal counts are integers, immune to
// floating-point wobble; the makespan is pinned loosely.)
func TestGoldenDeterminism(t *testing.T) {
	w := wats.GA(1)
	w.Batches = 4
	res, err := wats.Simulate(wats.AMC2, wats.WATS, w, wats.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 4*129 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
	res2, err := wats.Simulate(wats.AMC2, wats.WATS, func() wats.Workload {
		w := wats.GA(1)
		w.Batches = 4
		return w
	}(), wats.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals != res2.Steals || res.Makespan != res2.Makespan {
		t.Fatalf("replay mismatch: %d/%v vs %d/%v", res.Steals, res.Makespan, res2.Steals, res2.Makespan)
	}
	// Loose absolute pin: a change beyond 20% signals a behavioural shift.
	if res.Makespan < 0.9 || res.Makespan > 1.6 {
		t.Fatalf("makespan %v drifted outside the pinned band [0.9, 1.6]", res.Makespan)
	}
}

// TestShareThroughFacade exercises the task-sharing baseline end to end.
func TestShareThroughFacade(t *testing.T) {
	w := wats.GA(2)
	w.Batches = 2
	res, err := wats.Simulate(wats.AMC1, "Share", w, wats.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 2*129 {
		t.Fatalf("TasksDone=%d", res.TasksDone)
	}
}
